"""Content-addressed result store (repro.serve.store).

The concurrency tests exercise the store the way campaigns actually
hit it: many worker processes writing into one directory at once, some
of them racing on the same key.
"""

import json
import multiprocessing

import pytest

from repro.node import SystemConfig
from repro.serve.store import ResultStore, code_version, query_key


class TestQueryKey:
    def test_stable_across_calls(self):
        config = SystemConfig.paper_testbed()
        key = query_key("am_lat", config, {"payload_bytes": 8}, 2019)
        assert key == query_key("am_lat", config, {"payload_bytes": 8}, 2019)

    def test_every_input_contributes(self):
        config = SystemConfig.paper_testbed()
        base = query_key("am_lat", config, {"payload_bytes": 8}, 2019)
        assert base != query_key("put_bw", config, {"payload_bytes": 8}, 2019)
        assert base != query_key("am_lat", config, {"payload_bytes": 16}, 2019)
        assert base != query_key("am_lat", config, {"payload_bytes": 8}, 2020)
        assert base != query_key(
            "am_lat",
            SystemConfig.builder().nic(txq_depth=2).build(),
            {"payload_bytes": 8},
            2019,
        )

    def test_code_version_is_cached_and_hexish(self):
        assert code_version() == code_version()
        assert len(code_version()) == 16
        int(code_version(), 16)


class TestStoreBasics:
    def test_put_get_round_trip(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put("k1", {"measurements": {"x": 1.5}, "status": "ok"})
        assert store.get("k1") == {"measurements": {"x": 1.5}, "status": "ok"}
        assert "k1" in store
        assert len(store) == 1
        assert list(store.keys()) == ["k1"]

    def test_missing_key_is_none(self, tmp_path):
        store = ResultStore(tmp_path)
        assert store.get("nope") is None
        assert "nope" not in store

    def test_overwrite_wins(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put("k", {"v": 1})
        store.put("k", {"v": 2})
        assert store.get("k") == {"v": 2}
        assert len(store) == 1

    def test_torn_file_reads_as_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        (tmp_path / "torn.json").write_text('{"half": ')
        assert store.get("torn") is None

    def test_no_temp_files_left_behind(self, tmp_path):
        store = ResultStore(tmp_path)
        for index in range(10):
            store.put(f"k{index}", {"v": index})
        leftovers = [p for p in tmp_path.iterdir() if p.suffix != ".json"]
        assert leftovers == []

    def test_stats_track_this_handle(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put("k", {"v": 1})
        store.get("k")
        store.get("absent")
        stats = store.stats()
        assert stats == {
            "entries": 1,
            "gets": 2,
            "hits": 1,
            "misses": 1,
            "puts": 1,
            "hit_rate": 0.5,
        }


def _hammer(args):
    """Write ``writes`` payloads into one shared store directory."""
    directory, worker, writes, shared_keys = args
    store = ResultStore(directory)
    for index in range(writes):
        # Even indices race on keys shared across every worker; odd
        # indices are private to this worker.
        if index % 2 == 0:
            key = f"shared-{index % shared_keys}"
        else:
            key = f"w{worker}-{index}"
        store.put(key, {"worker": worker, "index": index, "pad": "x" * 512})
    return worker


class TestConcurrentWriters:
    def test_parallel_writers_never_tear(self, tmp_path):
        workers, writes, shared_keys = 4, 30, 3
        ctx = multiprocessing.get_context()
        with ctx.Pool(workers) as pool:
            done = pool.map(
                _hammer,
                [(str(tmp_path), w, writes, shared_keys) for w in range(workers)],
            )
        assert sorted(done) == list(range(workers))
        store = ResultStore(tmp_path)
        keys = list(store.keys())
        # shared keys + per-worker odd-index keys, every one readable.
        assert len(keys) == shared_keys + workers * (writes // 2)
        for key in keys:
            payload = store.get(key)
            assert payload is not None
            assert payload["pad"] == "x" * 512
        # Shared keys hold one complete payload from *some* writer.
        for shared in range(shared_keys):
            assert store.get(f"shared-{shared}")["worker"] in range(workers)

    def test_reader_during_writes_sees_complete_payloads(self, tmp_path):
        store = ResultStore(tmp_path)
        ctx = multiprocessing.get_context()
        with ctx.Pool(2) as pool:
            async_result = pool.map_async(
                _hammer, [(str(tmp_path), w, 20, 1) for w in range(2)]
            )
            while not async_result.ready():
                payload = store.get("shared-0")
                if payload is not None:
                    assert payload["pad"] == "x" * 512
            async_result.get()


class TestCampaignAbsorption:
    def test_result_cache_is_the_store(self):
        from repro.campaign import ResultCache

        assert issubclass(ResultCache, ResultStore)

    def test_point_cache_key_is_query_key(self):
        from repro.campaign.cache import point_cache_key

        config = SystemConfig.paper_testbed()
        assert point_cache_key(
            "am_lat", config, {"payload_bytes": 8}, 2019
        ) == query_key("am_lat", config, {"payload_bytes": 8}, 2019)

    def test_store_payloads_are_sorted_json(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put("k", {"b": 1, "a": 2})
        raw = (tmp_path / "k.json").read_text()
        assert raw == json.dumps(
            {"__code__": code_version(), "a": 2, "b": 1}, sort_keys=True
        )


class TestCodeVersionInvalidation:
    def test_key_depends_on_code_version(self, monkeypatch):
        import repro.serve.store as store_module

        config = SystemConfig.paper_testbed()
        before = query_key("am_lat", config, {}, 2019)
        monkeypatch.setattr(store_module, "code_version", lambda: "f" * 16)
        after = store_module.query_key("am_lat", config, {}, 2019)
        assert before != after


class TestPrune:
    def test_current_entries_survive(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put("k1", {"v": 1})
        store.put("k2", {"v": 2})
        report = store.prune()
        assert report == {
            "scanned": 2,
            "kept": 2,
            "removed": 0,
            "bytes_reclaimed": 0,
        }
        assert store.get("k1") == {"v": 1}

    def test_stale_code_version_is_evicted(self, tmp_path, monkeypatch):
        import repro.serve.store as store_module

        store = ResultStore(tmp_path)
        monkeypatch.setattr(store_module, "code_version", lambda: "0" * 16)
        store.put("old", {"v": 1})
        monkeypatch.undo()
        store.put("new", {"v": 2})

        stale_bytes = (tmp_path / "old.json").stat().st_size
        report = store.prune()
        assert report["removed"] == 1
        assert report["kept"] == 1
        assert report["bytes_reclaimed"] == stale_bytes
        assert store.get("old") is None
        assert store.get("new") == {"v": 2}

    def test_unvouchable_files_are_evicted(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put("live", {"v": 1})
        # Pre-stamp producer, torn write, orphaned writer temp file.
        (tmp_path / "unstamped.json").write_text('{"v": 3}')
        (tmp_path / "torn.json").write_text('{"half": ')
        (tmp_path / ".orphan.abc.tmp").write_text('{"v": 4}')

        report = store.prune()
        assert report["scanned"] == 4
        assert report["removed"] == 3
        assert report["bytes_reclaimed"] > 0
        assert [p.name for p in tmp_path.iterdir()] == ["live.json"]

    def test_get_strips_the_stamp(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put("k", {"v": 1})
        payload = store.get("k")
        assert payload == {"v": 1}
        assert "__code__" not in payload
