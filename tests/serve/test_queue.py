"""Async job queue (repro.serve.queue) and the executor it wraps."""

import time

import pytest

from repro.serve.executor import ExecutorError, WorkStealingExecutor
from repro.serve.queue import JobQueue


def _square(x):
    return x * x


def _slow_square(payload):
    value, delay = payload
    time.sleep(delay)
    return value * value


def _explode(x):
    raise ValueError(f"boom {x}")


class TestExecutor:
    def test_map_preserves_submission_order(self):
        with WorkStealingExecutor(_square, jobs=3) as executor:
            assert executor.map([3, 1, 2]) == [9, 1, 4]

    def test_uneven_tasks_still_all_complete(self):
        payloads = [(1, 0.2), (2, 0.0), (3, 0.0), (4, 0.0)]
        with WorkStealingExecutor(_slow_square, jobs=2) as executor:
            assert executor.map(payloads) == [1, 4, 9, 16]

    def test_task_error_raises_with_worker_traceback(self):
        with WorkStealingExecutor(_explode, jobs=1) as executor:
            with pytest.raises(ExecutorError, match="boom 7"):
                executor.map([7])

    def test_zero_jobs_rejected(self):
        with pytest.raises(ValueError, match="jobs"):
            WorkStealingExecutor(_square, jobs=0)

    def test_submit_after_close_rejected(self):
        executor = WorkStealingExecutor(_square, jobs=1)
        executor.close()
        with pytest.raises(RuntimeError, match="closed"):
            executor.submit(1)

    def test_collect_without_outstanding_rejected(self):
        with WorkStealingExecutor(_square, jobs=1) as executor:
            with pytest.raises(RuntimeError, match="outstanding"):
                executor.next_result()


class TestJobQueue:
    def test_submit_returns_future_immediately(self):
        with JobQueue(_slow_square, jobs=1) as queue:
            job = queue.submit((5, 0.05))
            assert not job.done()
            assert job.result(timeout=10.0) == 25
            assert job.done()

    def test_many_jobs_resolve_independently(self):
        with JobQueue(_square, jobs=2) as queue:
            jobs = [queue.submit(n) for n in range(6)]
            assert [job.result(timeout=10.0) for job in jobs] == [
                0, 1, 4, 9, 16, 25,
            ]

    def test_task_error_surfaces_on_result(self):
        with JobQueue(_explode, jobs=1) as queue:
            job = queue.submit(3)
            with pytest.raises(ExecutorError, match="boom 3"):
                job.result(timeout=10.0)

    def test_result_timeout(self):
        with JobQueue(_slow_square, jobs=1) as queue:
            job = queue.submit((1, 0.5))
            with pytest.raises(TimeoutError):
                job.result(timeout=0.01)
            assert job.result(timeout=10.0) == 1

    def test_close_drains_outstanding_jobs(self):
        queue = JobQueue(_slow_square, jobs=2)
        jobs = [queue.submit((n, 0.05)) for n in range(4)]
        queue.close()
        assert [job.result(timeout=0.0) for job in jobs] == [0, 1, 4, 9]

    def test_submit_after_close_rejected(self):
        queue = JobQueue(_square, jobs=1)
        queue.close()
        with pytest.raises(RuntimeError, match="closed"):
            queue.submit(1)

    def test_close_twice_is_harmless(self):
        queue = JobQueue(_square, jobs=1)
        queue.close()
        queue.close()
