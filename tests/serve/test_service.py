"""End-to-end serving tier (repro.serve.service + repro.serve.verify)."""

import pytest

from repro.node import SystemConfig
from repro.serve import Answer, Query, ResultStore, SampledVerifier, ServeTier
from repro.serve.surrogate import AnalyticSurrogate

BASE = SystemConfig.paper_testbed(deterministic=True)


def _tier(tmp_path, fraction=0.0, **kwargs) -> ServeTier:
    kwargs.setdefault("base_config", BASE)
    return ServeTier(
        tmp_path / "store",
        verifier=SampledVerifier(fraction=fraction),
        **kwargs,
    )


class TestVerifierSampling:
    def test_fraction_zero_never_verifies(self):
        verifier = SampledVerifier(fraction=0.0)
        assert not any(verifier.should_verify() for _ in range(20))

    def test_fraction_one_always_verifies(self):
        verifier = SampledVerifier(fraction=1.0)
        assert all(verifier.should_verify() for _ in range(20))

    def test_stride_sampling_is_deterministic_and_first_inclusive(self):
        verifier = SampledVerifier(fraction=0.25)
        decisions = [verifier.should_verify() for _ in range(8)]
        assert decisions == [True, False, False, False, True, False, False, False]
        again = SampledVerifier(fraction=0.25)
        assert [again.should_verify() for _ in range(8)] == decisions

    def test_check_quarantines_beyond_margin(self):
        verifier = SampledVerifier(fraction=1.0, margin=0.05)
        surrogate = AnalyticSurrogate("am_lat")
        record = verifier.check(
            surrogate, {"observed_latency_ns": 110.0}, {"observed_latency_ns": 100.0}
        )
        assert not record.passed
        assert record.max_relative_error == pytest.approx(0.10)
        assert surrogate.quarantined
        assert verifier.quarantines == 1

    def test_check_passes_within_margin(self):
        verifier = SampledVerifier(fraction=1.0, margin=0.05)
        surrogate = AnalyticSurrogate("am_lat")
        record = verifier.check(
            surrogate, {"observed_latency_ns": 101.0}, {"observed_latency_ns": 100.0}
        )
        assert record.passed
        assert not surrogate.quarantined

    def test_no_shared_metrics_rejected(self):
        verifier = SampledVerifier(fraction=1.0)
        with pytest.raises(ValueError, match="no .*metrics"):
            verifier.check(AnalyticSurrogate("am_lat"), {"a": 1.0}, {"b": 2.0})

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ValueError, match="fraction"):
            SampledVerifier(fraction=1.5)


class TestQuery:
    def test_dotted_params_become_config_overrides(self):
        q = Query("put_oneway_latency", {"payload_bytes": 64, "nic.txq_depth": 4})
        assert q.params == {"payload_bytes": 64}
        assert q.config_overrides == {"nic.txq_depth": 4}

    def test_round_trips_through_dict(self):
        q = Query("am_lat", {"payload_bytes": 8}, seed=7)
        assert Query.from_dict(q.to_dict()) == q


class TestTierFlow:
    def test_miss_simulates_then_hits_store(self, tmp_path):
        tier = _tier(tmp_path)
        first = tier.query("put_oneway_latency", {"payload_bytes": 64})
        assert first.source == "simulation"
        assert first.measurements["one_way_latency_ns"] > 0
        second = tier.query("put_oneway_latency", {"payload_bytes": 64})
        assert second.source == "store"
        assert second.measurements == first.measurements
        assert tier.counters["store_hits"] == 1
        assert tier.counters["simulations"] == 1

    def test_campaign_cache_serves_tier_queries(self, tmp_path):
        """A campaign and the serve tier share one address space."""
        from repro.campaign import CampaignSpec, SweepAxis, run_campaign

        store_dir = tmp_path / "store"
        run_campaign(
            CampaignSpec(
                name="warm",
                workload="put_oneway_latency",
                base_config=BASE,
                axes=(SweepAxis("payload_bytes", (64, 128)),),
            ),
            cache_dir=store_dir,
        )
        tier = ServeTier(store_dir, base_config=BASE)
        answer = tier.query("put_oneway_latency", {"payload_bytes": 128})
        assert answer.source == "store"

    def test_in_envelope_surrogate_answers_without_simulating(self, tmp_path):
        tier = _tier(tmp_path)
        tier.fit(
            "put_oneway_latency",
            axes={"payload_bytes": (1024, 4096), "network.switch_count": (1, 3)},
        )
        simulations_after_fit = tier.counters["simulations"]
        answer = tier.query(
            "put_oneway_latency",
            {"payload_bytes": 2048},
            {"network.switch_count": 2},
        )
        assert answer.source == "surrogate"
        assert answer.surrogate is not None
        assert tier.counters["simulations"] == simulations_after_fit

    def test_fit_warms_the_store_for_grid_points(self, tmp_path):
        tier = _tier(tmp_path)
        tier.fit("put_oneway_latency", axes={"payload_bytes": (1024, 4096)})
        answer = tier.query("put_oneway_latency", {"payload_bytes": 1024})
        assert answer.source == "store"

    def test_out_of_envelope_falls_back_to_simulation(self, tmp_path):
        tier = _tier(tmp_path)
        tier.fit("put_oneway_latency", axes={"payload_bytes": (1024, 4096)})
        answer = tier.query("put_oneway_latency", {"payload_bytes": 8192})
        assert answer.source == "simulation"
        assert tier.counters["out_of_envelope"] == 1

    def test_failed_simulation_becomes_error_answer(self, tmp_path):
        tier = _tier(tmp_path)
        answer = tier.query("selftest", {"fail": True})
        assert not answer.ok
        assert answer.source == "error"
        assert "asked to fail" in answer.error
        assert tier.counters["errors"] == 1
        # Failures are never stored: a retry re-simulates.
        again = tier.query("selftest", {"fail": True})
        assert again.source == "error"
        assert tier.counters["store_hits"] == 0

    def test_mismatched_surrogate_config_rejected(self, tmp_path):
        tier = _tier(tmp_path)
        other = ServeTier(
            tmp_path / "other",
            base_config=SystemConfig.builder().nic(txq_depth=2).build(),
        )
        surrogate = other.fit("put_oneway_latency", axes={"payload_bytes": (64, 128)})
        with pytest.raises(ValueError, match="fitted against"):
            tier.add_surrogate(surrogate)


class TestVerification:
    def test_sampled_answer_is_audited_and_passes(self, tmp_path):
        tier = _tier(tmp_path, fraction=1.0)
        tier.fit(
            "put_oneway_latency",
            axes={"payload_bytes": (1024, 4096), "network.switch_count": (1, 3)},
        )
        answer = tier.query(
            "put_oneway_latency",
            {"payload_bytes": 2048},
            {"network.switch_count": 2},
        )
        assert answer.source == "surrogate"
        assert answer.verification is not None
        assert answer.verification.passed
        assert answer.verification.max_relative_error <= 0.05
        assert tier.verifier.verifications == 1

    def test_verification_simulation_lands_in_the_store(self, tmp_path):
        tier = _tier(tmp_path, fraction=1.0)
        tier.fit(
            "put_oneway_latency",
            axes={"payload_bytes": (1024, 4096), "network.switch_count": (1, 3)},
        )
        query = Query(
            "put_oneway_latency",
            {"payload_bytes": 2048},
            {"network.switch_count": 2},
        )
        tier.query(query)
        # The audit simulated the point, so a repeat is a store hit.
        assert tier.query(query).source == "store"

    def test_bad_surrogate_quarantined_and_truth_served(self, tmp_path):
        """put_bw's analytic model under-amortises short measurement
        windows — exactly the drift the sampled verifier must catch."""
        tier = ServeTier(
            tmp_path / "store",
            verifier=SampledVerifier(fraction=1.0),
        )
        surrogate = AnalyticSurrogate("put_bw")
        tier.add_surrogate(surrogate)
        answer = tier.query("put_bw", {"n_messages": 300, "warmup": 100})
        assert answer.source == "simulation"
        assert answer.verification is not None
        assert not answer.verification.passed
        assert surrogate.quarantined
        assert tier.verifier.quarantines == 1
        # Quarantined: the next in-envelope query goes straight to
        # simulation (here, the store — the audit already ran it).
        repeat = tier.query("put_bw", {"n_messages": 300, "warmup": 100})
        assert repeat.source == "store"
        assert tier.counters["surrogate_hits"] == 0

    def test_good_analytic_surrogate_survives_audit(self, tmp_path):
        tier = ServeTier(
            tmp_path / "store",
            verifier=SampledVerifier(fraction=1.0),
        )
        tier.add_surrogate(AnalyticSurrogate("am_lat"))
        answer = tier.query("am_lat", {"payload_bytes": 8, "iterations": 100})
        assert answer.source == "surrogate"
        assert answer.verification.passed


class TestBatch:
    def test_batch_order_and_sources(self, tmp_path):
        tier = _tier(tmp_path)
        tier.fit("put_oneway_latency", axes={"payload_bytes": (1024, 4096)})
        queries = [
            Query("put_oneway_latency", {"payload_bytes": 1024}),  # store (fit)
            Query("put_oneway_latency", {"payload_bytes": 2048}),  # surrogate
            Query("put_oneway_latency", {"payload_bytes": 8192}),  # simulation
        ]
        answers = tier.query_batch(queries)
        assert [a.query for a in answers] == queries
        assert [a.source for a in answers] == ["store", "surrogate", "simulation"]

    def test_parallel_batch_matches_serial(self, tmp_path):
        tier_a = _tier(tmp_path / "a")
        tier_b = _tier(tmp_path / "b")
        queries = [
            Query("put_oneway_latency", {"payload_bytes": size})
            for size in (8, 64, 256, 1024)
        ]
        serial = tier_a.query_batch(queries, jobs=1)
        parallel = tier_b.query_batch(queries, jobs=4)
        assert [a.measurements for a in serial] == [
            a.measurements for a in parallel
        ]
        assert all(a.source == "simulation" for a in parallel)

    def test_answer_json_without_host_fields_is_deterministic(self, tmp_path):
        import json

        queries = [Query("put_oneway_latency", {"payload_bytes": 64})]
        first = _tier(tmp_path / "x").query_batch(queries)
        second = _tier(tmp_path / "y").query_batch(queries)
        dump = lambda answers: json.dumps(  # noqa: E731
            [a.to_dict(include_host=False) for a in answers], sort_keys=True
        )
        assert dump(first) == dump(second)
        assert "duration_s" not in first[0].to_dict(include_host=False)
        assert "duration_s" in first[0].to_dict()


class TestStats:
    def test_rates_reflect_counters(self, tmp_path):
        tier = _tier(tmp_path)
        tier.query("put_oneway_latency", {"payload_bytes": 64})
        tier.query("put_oneway_latency", {"payload_bytes": 64})
        stats = tier.stats()
        assert stats["queries"] == 2
        assert stats["rates"]["store_hit"] == 0.5
        assert stats["rates"]["simulation"] == 0.5
        assert stats["store"]["entries"] == 1
        assert stats["verifier"]["fraction"] == 0.0

    def test_surrogate_inventory_listed(self, tmp_path):
        tier = _tier(tmp_path)
        tier.fit("put_oneway_latency", axes={"payload_bytes": (1024, 4096)})
        (entry,) = tier.stats()["surrogates"]
        assert entry["workload"] == "put_oneway_latency"
        assert entry["quarantined"] is False


class TestPublicSurface:
    def test_answer_is_exported_dataclass(self):
        assert Answer.__dataclass_fields__  # noqa: SLF001
        assert ResultStore is not None
