"""Unit tests for the segment cost table (repro.cpu.costs)."""

import pytest

from repro.cpu.costs import SegmentCosts


class TestDefaults:
    """The defaults must reproduce the paper's Table 1 aggregates."""

    def test_llp_post_total(self):
        assert SegmentCosts().llp_post == pytest.approx(175.42)

    def test_hlp_post_total(self):
        assert SegmentCosts().hlp_post == pytest.approx(26.56)

    def test_hlp_rx_prog_total(self):
        assert SegmentCosts().hlp_rx_prog == pytest.approx(224.66)

    def test_mpi_wait_mpich_total(self):
        assert SegmentCosts().mpi_wait_mpich_total == pytest.approx(293.29)

    def test_mpi_wait_ucp_total(self):
        assert SegmentCosts().mpi_wait_ucp_total == pytest.approx(150.51)

    def test_mpi_wait_total(self):
        assert SegmentCosts().mpi_wait_total == pytest.approx(443.80)

    def test_perftest_constituents(self):
        costs = SegmentCosts()
        assert costs.busy_post == pytest.approx(8.99)
        assert costs.measurement_update == pytest.approx(49.69)


class TestValidation:
    def test_negative_cost_rejected(self):
        with pytest.raises(ValueError, match="md_setup"):
            SegmentCosts(md_setup=-1.0)

    def test_zero_costs_allowed(self):
        costs = SegmentCosts(md_setup=0.0, llp_prog=0.0)
        assert costs.md_setup == 0.0

    def test_frozen(self):
        costs = SegmentCosts()
        with pytest.raises(AttributeError):
            costs.md_setup = 5.0  # type: ignore[misc]


class TestOverrides:
    def test_custom_pio_changes_llp_post(self):
        fast_pio = SegmentCosts(pio_copy_64b=15.0)
        assert fast_pio.llp_post == pytest.approx(175.42 - 94.25 + 15.0)

    def test_totals_track_constituents(self):
        costs = SegmentCosts(mpich_isend=10.0, ucp_isend=5.0)
        assert costs.hlp_post == 15.0
