"""Unit tests for the CPU core executor (repro.cpu.core)."""

import numpy as np
import pytest

from repro.cpu.core import CpuCore, SegmentAccount
from repro.cpu.costs import SegmentCosts
from repro.sim import Environment, JitterModel


def make_core(record_samples=False, jitter=None):
    env = Environment()
    core = CpuCore(
        env,
        SegmentCosts(),
        jitter or JitterModel.deterministic(),
        np.random.default_rng(0),
        record_samples=record_samples,
    )
    return env, core


class TestExecute:
    def test_advances_clock_by_cost(self):
        env, core = make_core()

        def body():
            yield from core.execute("md_setup")

        env.run(until=env.process(body()))
        assert env.now == pytest.approx(27.78)

    def test_returns_duration(self):
        env, core = make_core()

        def body():
            duration = yield from core.execute("llp_prog")
            return duration

        assert env.run(until=env.process(body())) == pytest.approx(61.63)

    def test_mean_override(self):
        env, core = make_core()

        def body():
            yield from core.execute("custom_segment", mean=100.0)

        env.run(until=env.process(body()))
        assert env.now == pytest.approx(100.0)

    def test_unknown_segment_without_mean_rejected(self):
        env, core = make_core()

        def body():
            yield from core.execute("no_such_segment")

        with pytest.raises(AttributeError):
            env.run(until=env.process(body()))

    def test_zero_duration_segment(self):
        env, core = make_core()

        def body():
            yield from core.execute("zero", mean=0.0)
            return env.now

        assert env.run(until=env.process(body())) == 0.0

    def test_sequential_execution_accumulates(self):
        env, core = make_core()

        def body():
            yield from core.execute("md_setup")
            yield from core.execute("barrier_md")

        env.run(until=env.process(body()))
        assert env.now == pytest.approx(27.78 + 17.33)


class TestAccounting:
    def test_account_counts_and_totals(self):
        env, core = make_core()

        def body():
            for _ in range(3):
                yield from core.execute("llp_prog")

        env.run(until=env.process(body()))
        account = core.account("llp_prog")
        assert account.count == 3
        assert account.total_ns == pytest.approx(3 * 61.63)
        assert account.mean_ns == pytest.approx(61.63)

    def test_missing_account_is_empty(self):
        _env, core = make_core()
        account = core.account("never_run")
        assert account.count == 0
        assert account.mean_ns == 0.0

    def test_busy_time_tracked(self):
        env, core = make_core()

        def body():
            yield from core.execute("md_setup")

        env.run(until=env.process(body()))
        assert core.busy_ns == pytest.approx(27.78)

    def test_utilization(self):
        env, core = make_core()

        def body():
            yield from core.execute("md_setup")
            yield env.timeout(27.78)  # idle for as long as it worked

        env.run(until=env.process(body()))
        assert core.utilization() == pytest.approx(0.5)

    def test_utilization_zero_at_time_zero(self):
        _env, core = make_core()
        assert core.utilization() == 0.0

    def test_samples_recorded_when_requested(self):
        env, core = make_core(record_samples=True)

        def body():
            yield from core.execute("md_setup")
            yield from core.execute("md_setup")

        env.run(until=env.process(body()))
        assert core.account("md_setup").samples == pytest.approx([27.78, 27.78])

    def test_samples_not_recorded_by_default(self):
        env, core = make_core()

        def body():
            yield from core.execute("md_setup")

        env.run(until=env.process(body()))
        assert core.account("md_setup").samples == []


class TestJitter:
    def test_noisy_durations_vary_but_average_to_mean(self):
        env, core = make_core(
            record_samples=True, jitter=JitterModel(cv=0.1, outlier_prob=0.0)
        )

        def body():
            for _ in range(2000):
                yield from core.execute("pio_copy_64b")

        env.run(until=env.process(body()))
        samples = np.array(core.account("pio_copy_64b").samples)
        assert samples.std() > 0
        assert samples.mean() == pytest.approx(94.25, rel=0.02)

    def test_ground_truth_mean_tracks_account(self):
        env, core = make_core()

        def body():
            yield from core.execute("md_setup")

        env.run(until=env.process(body()))
        assert core.ground_truth_mean("md_setup") == pytest.approx(27.78)


class TestSegmentAccountDataclass:
    def test_empty_mean(self):
        assert SegmentAccount().mean_ns == 0.0
