"""Unit tests for the virtual timer (repro.cpu.timer)."""

import numpy as np
import pytest

from repro.cpu.timer import VirtualTimer
from repro.sim import Environment


def make_timer(overhead=49.69, std=0.0):
    env = Environment()
    return env, VirtualTimer(
        env,
        np.random.default_rng(0),
        measurement_overhead_ns=overhead,
        overhead_std_ns=std,
    )


class TestRead:
    def test_read_costs_half_overhead(self):
        env, timer = make_timer()

        def body():
            sample = yield from timer.read()
            return sample

        sample = env.run(until=env.process(body()))
        assert env.now == pytest.approx(49.69 / 2)
        assert sample.timestamp_ns == pytest.approx(49.69 / 2)
        assert sample.read_cost_ns == pytest.approx(49.69 / 2)

    def test_wrapped_region_inflates_by_full_overhead(self):
        env, timer = make_timer()
        measured = {}

        def body():
            t0 = env.now
            yield from timer.read()
            yield env.timeout(100.0)  # the region
            yield from timer.read()
            measured["elapsed"] = env.now - t0

        env.run(until=env.process(body()))
        assert measured["elapsed"] == pytest.approx(100.0 + 49.69)

    def test_zero_overhead_timer_is_free(self):
        env, timer = make_timer(overhead=0.0)

        def body():
            yield from timer.read()
            return env.now

        assert env.run(until=env.process(body())) == 0.0

    def test_read_counter_increments(self):
        env, timer = make_timer()

        def body():
            yield from timer.read()
            yield from timer.read()

        env.run(until=env.process(body()))
        assert timer.reads == 2

    def test_noisy_read_costs_vary(self):
        env, timer = make_timer(std=1.48)
        costs = []

        def body():
            for _ in range(200):
                sample = yield from timer.read()
                costs.append(sample.read_cost_ns)

        env.run(until=env.process(body()))
        assert np.std(costs) > 0
        assert np.mean(costs) == pytest.approx(49.69 / 2, rel=0.05)

    def test_costs_never_negative(self):
        env, timer = make_timer(overhead=1.0, std=10.0)

        def body():
            for _ in range(500):
                sample = yield from timer.read()
                assert sample.read_cost_ns >= 0.0

        env.run(until=env.process(body()))


class TestValidation:
    def test_negative_overhead_rejected(self):
        env = Environment()
        with pytest.raises(ValueError):
            VirtualTimer(env, np.random.default_rng(0), measurement_overhead_ns=-1)

    def test_negative_std_rejected(self):
        env = Environment()
        with pytest.raises(ValueError):
            VirtualTimer(env, np.random.default_rng(0), overhead_std_ns=-1)
