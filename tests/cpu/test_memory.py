"""Unit tests for the memory-type model (repro.cpu.memory)."""

import pytest

from repro.cpu.memory import MemoryModel, MemoryType


class TestWriteCost:
    def test_device_64b_default_matches_pio_copy(self):
        model = MemoryModel()
        assert model.write_cost(MemoryType.DEVICE_GRE, 64) == pytest.approx(94.25)

    def test_normal_64b_is_sub_nanosecond(self):
        # §7.1: "A regular 64-byte memcpy ... takes less than a nanosecond".
        model = MemoryModel()
        assert model.write_cost(MemoryType.NORMAL, 64) < 1.0

    def test_chunking_rounds_up(self):
        model = MemoryModel()
        one = model.write_cost(MemoryType.DEVICE_GRE, 64)
        assert model.write_cost(MemoryType.DEVICE_GRE, 65) == pytest.approx(2 * one)
        assert model.write_cost(MemoryType.DEVICE_GRE, 128) == pytest.approx(2 * one)
        assert model.write_cost(MemoryType.DEVICE_GRE, 8) == pytest.approx(one)

    def test_zero_bytes_is_free(self):
        model = MemoryModel()
        assert model.write_cost(MemoryType.NORMAL, 0) == 0.0
        assert model.write_cost(MemoryType.DEVICE_GRE, 0) == 0.0

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            MemoryModel().write_cost(MemoryType.NORMAL, -1)

    def test_negative_costs_rejected(self):
        with pytest.raises(ValueError):
            MemoryModel(normal_write_64b=-0.1)


class TestDevicePenalty:
    def test_default_penalty_exceeds_90_percent(self):
        # §7.1: "the current difference between 64-byte writes to Normal
        # and Device memory is more than 90%".
        model = MemoryModel()
        assert (1 - model.normal_write_64b / model.device_write_64b) > 0.90
        assert model.device_penalty > 10

    def test_penalty_infinite_for_free_normal_writes(self):
        model = MemoryModel(normal_write_64b=0.0)
        assert model.device_penalty == float("inf")

    def test_optimized_device_memory(self):
        # The §7.1 PIO optimization: device writes as fast as normal.
        model = MemoryModel(device_write_64b=0.9)
        assert model.device_penalty == pytest.approx(1.0)
