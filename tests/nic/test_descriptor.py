"""Unit tests for message descriptors (repro.nic.descriptor)."""

import pytest

from repro.nic.descriptor import Message, MessageOp


class TestMessage:
    def test_defaults(self):
        message = Message(op=MessageOp.PUT, payload_bytes=8)
        assert message.inline
        assert message.pio
        assert message.signaled
        assert message.timestamps == {}

    def test_negative_payload_rejected(self):
        with pytest.raises(ValueError):
            Message(op=MessageOp.AM, payload_bytes=-1)

    def test_ids_increase(self):
        a = Message(op=MessageOp.PUT, payload_bytes=8)
        b = Message(op=MessageOp.PUT, payload_bytes=8)
        assert b.msg_id > a.msg_id


class TestJournal:
    def test_stamp_records_first_time_only(self):
        message = Message(op=MessageOp.AM, payload_bytes=8)
        message.stamp("posted", 10.0)
        message.stamp("posted", 99.0)
        assert message.timestamps["posted"] == 10.0

    def test_interval(self):
        message = Message(op=MessageOp.AM, payload_bytes=8)
        message.stamp("posted", 10.0)
        message.stamp("nic_arrival", 147.49)
        assert message.interval("posted", "nic_arrival") == pytest.approx(137.49)

    def test_interval_missing_stage_raises(self):
        message = Message(op=MessageOp.AM, payload_bytes=8)
        message.stamp("posted", 0.0)
        with pytest.raises(KeyError):
            message.interval("posted", "never")
