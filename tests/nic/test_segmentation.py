"""Tests for Max_Payload_Size TLP segmentation on large transfers."""

import pytest

from repro.llp.uct import UCS_OK, UctWorker
from repro.node import SystemConfig, Testbed
from repro.pcie.link import Direction


def run_put(payload_bytes, config=None):
    tb = Testbed(config or SystemConfig.paper_testbed(deterministic=True))
    worker = UctWorker(tb.node1)
    iface = worker.create_iface()
    remote = UctWorker(tb.node2).create_iface()
    ep = iface.create_ep(remote)

    def body():
        if payload_bytes <= tb.config.nic.inline_max_bytes:
            status = yield from ep.put_short(payload_bytes)
        else:
            status = yield from ep.put_zcopy(payload_bytes)
        assert status == UCS_OK

    tb.env.run(until=tb.env.process(body(), name="post"))
    tb.run()
    return tb, iface.last_message


class TestDmaReadSegmentation:
    def test_large_fetch_split_into_max_payload_mrds(self):
        tb, _message = run_put(4096)
        # 4096 / 256 = 16 payload-fetch MRds + 1 MD fetch on node 1.
        mrds = [
            r
            for r in tb.analyzer.tlps(Direction.UPSTREAM)
            if r.packet.purpose == "payload_fetch"
        ]
        assert len(mrds) == 16
        assert all(r.packet.read_bytes == 256 for r in mrds)

    def test_remainder_segment_smaller(self):
        tb, _message = run_put(300)
        mrds = [
            r
            for r in tb.analyzer.tlps(Direction.UPSTREAM)
            if r.packet.purpose == "payload_fetch"
        ]
        assert sorted(r.packet.read_bytes for r in mrds) == [44, 256]

    def test_transmit_waits_for_all_segments(self):
        _tb, message = run_put(4096)
        assert message.timestamps["wire_out"] >= message.timestamps["payload_fetched"]
        assert "payload_visible" in message.timestamps

    def test_small_fetch_single_segment(self):
        tb, _message = run_put(100)
        mrds = [
            r
            for r in tb.analyzer.tlps(Direction.UPSTREAM)
            if r.packet.purpose == "payload_fetch"
        ]
        assert len(mrds) == 1
        assert mrds[0].packet.read_bytes == 100

    def test_pending_segment_table_drains(self):
        tb, _message = run_put(4096)
        assert tb.node1.nic._pending_segments == {}
        assert tb.node2.nic._pending_segments == {}


class TestDmaWriteSegmentation:
    def test_payload_delivered_exactly_once(self):
        tb, message = run_put(65536)
        assert len(tb.node2.memory.mailbox(message.recv_target)) == 1

    def test_visibility_follows_last_segment(self):
        """payload_visible must not fire before all bytes could have
        crossed the target link under credit flow control."""
        tb, message = run_put(65536)
        arrival = message.timestamps["target_nic"]
        visible = message.timestamps["payload_visible"]
        # 65536 B at 16 KiB of posted credits per ~475 ns round trip
        # cannot complete in one PCIe traversal.
        assert visible - arrival > 2 * 137.49

    def test_small_write_unsegmented(self):
        # The 8-byte message needs exactly one payload write on node 2.
        tb, _message = run_put(8)
        assert tb.node2.rc.dma_writes == 1

    def test_large_write_segment_count(self):
        tb, _message = run_put(4096)
        # 16 payload-write segments land in target memory.
        assert tb.node2.rc.dma_writes == 16
