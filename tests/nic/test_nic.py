"""Integration tests for the NIC data paths (repro.nic.nic).

These drive a full two-node testbed (deterministic) and check the §2
step sequences stage by stage through the message journals.
"""

import pytest

from repro.nic.descriptor import Message, MessageOp
from repro.node import SystemConfig, Testbed
from repro.pcie.link import Direction
from repro.pcie.packets import Tlp, TlpType


PCIE = 137.49
NETWORK = 382.81  # wire 274.81 + switch 108
RC_TO_MEM_8B = 240.96
RC_TO_MEM_64B = 238.80 + 0.27 * 64


def make_testbed():
    return Testbed(SystemConfig.paper_testbed(deterministic=True))


def post_pio(tb, message):
    """Hand a PIO-post TLP straight to node 1's Root Complex."""
    tb.node1.rc.mmio_write(
        Tlp(kind=TlpType.MWR, payload_bytes=64, purpose="pio_post", message=message)
    )


class TestPioInlinePath:
    def test_full_journal_timing(self):
        tb = make_testbed()
        qp = tb.node1.nic.create_qp(signal_period=1)
        message = Message(op=MessageOp.AM, payload_bytes=8, recv_target="rx", qp=qp)
        qp.register_post(message)
        message.stamp("posted", 0.0)
        post_pio(tb, message)
        tb.run()
        ts = message.timestamps
        assert ts["nic_arrival"] == pytest.approx(PCIE)
        assert ts["wire_out"] == pytest.approx(PCIE)
        assert ts["target_nic"] == pytest.approx(PCIE + NETWORK)
        assert ts["payload_visible"] == pytest.approx(
            PCIE + NETWORK + PCIE + RC_TO_MEM_8B
        )
        assert ts["ack_rx"] == pytest.approx(PCIE + 2 * NETWORK)
        assert ts["cqe_visible"] == pytest.approx(
            PCIE + 2 * NETWORK + PCIE + RC_TO_MEM_64B
        )

    def test_payload_lands_in_named_mailbox(self):
        tb = make_testbed()
        qp = tb.node1.nic.create_qp()
        message = Message(op=MessageOp.AM, payload_bytes=8, recv_target="inbox", qp=qp)
        qp.register_post(message)
        post_pio(tb, message)
        tb.run()
        assert len(tb.node2.memory.mailbox("inbox")) == 1

    def test_cqe_lands_in_qp_cq(self):
        tb = make_testbed()
        qp = tb.node1.nic.create_qp(signal_period=1)
        message = Message(op=MessageOp.PUT, payload_bytes=8, recv_target="rx", qp=qp)
        qp.register_post(message)
        post_pio(tb, message)
        tb.run()
        cqe = qp.cq.try_poll()
        assert cqe is not None
        assert cqe.completes == 1
        assert cqe.message is message

    def test_unsignaled_messages_produce_no_cqe(self):
        tb = make_testbed()
        qp = tb.node1.nic.create_qp(signal_period=4)
        messages = [
            Message(op=MessageOp.PUT, payload_bytes=8, recv_target="rx", qp=qp)
            for _ in range(3)
        ]
        for message in messages:
            qp.register_post(message)
            post_pio(tb, message)
        tb.run()
        assert qp.cq.available == 0
        assert qp.unsignaled_acked == 3

    def test_unsignaled_run_retired_by_next_signaled_cqe(self):
        tb = make_testbed()
        qp = tb.node1.nic.create_qp(signal_period=4)
        messages = [
            Message(op=MessageOp.PUT, payload_bytes=8, recv_target="rx", qp=qp)
            for _ in range(4)
        ]
        for message in messages:
            qp.register_post(message)
            post_pio(tb, message)
        tb.run()
        cqe = qp.cq.try_poll()
        assert cqe is not None
        assert cqe.completes == 4
        qp.consume_cqe(cqe)
        assert qp.txq.occupied == 0

    def test_counters(self):
        tb = make_testbed()
        qp = tb.node1.nic.create_qp()
        message = Message(op=MessageOp.PUT, payload_bytes=8, recv_target="rx", qp=qp)
        qp.register_post(message)
        post_pio(tb, message)
        tb.run()
        assert tb.node1.nic.messages_transmitted == 1
        assert tb.node2.nic.messages_received == 1


class TestDoorbellDmaPath:
    def test_doorbell_triggers_md_fetch_then_payload_fetch(self):
        """§2 steps 1-3: doorbell, MRd for the MD, MRd for the payload."""
        tb = make_testbed()
        qp = tb.node1.nic.create_qp()
        message = Message(
            op=MessageOp.PUT,
            payload_bytes=4096,
            inline=False,
            pio=False,
            recv_target="rx",
            qp=qp,
        )
        qp.register_post(message)
        tb.node1.rc.mmio_write(
            Tlp(kind=TlpType.MWR, payload_bytes=8, purpose="doorbell", message=message)
        )
        tb.run()
        ts = message.timestamps
        assert ts["nic_arrival"] == pytest.approx(PCIE)
        # MD fetch: MRd up + mem read (90) + CplD down.
        assert ts["md_fetched"] == pytest.approx(PCIE + 2 * PCIE + 90.0)
        # Payload fetch: another full PCIe round trip + memory read.
        assert ts["payload_fetched"] == pytest.approx(PCIE + 2 * (2 * PCIE + 90.0))
        assert ts["wire_out"] == pytest.approx(ts["payload_fetched"])
        assert "payload_visible" in ts

    def test_inline_doorbell_skips_payload_fetch(self):
        tb = make_testbed()
        qp = tb.node1.nic.create_qp()
        message = Message(
            op=MessageOp.PUT,
            payload_bytes=8,
            inline=True,
            pio=False,
            recv_target="rx",
            qp=qp,
        )
        qp.register_post(message)
        tb.node1.rc.mmio_write(
            Tlp(kind=TlpType.MWR, payload_bytes=8, purpose="doorbell", message=message)
        )
        tb.run()
        assert "md_fetched" in message.timestamps
        assert "payload_fetched" not in message.timestamps
        assert message.timestamps["wire_out"] == pytest.approx(
            message.timestamps["md_fetched"]
        )

    def test_pio_beats_doorbell_to_the_wire(self):
        """The whole point of PIO+inline: no DMA round trips (§2)."""
        tb_pio = make_testbed()
        qp = tb_pio.node1.nic.create_qp()
        pio_msg = Message(op=MessageOp.PUT, payload_bytes=8, recv_target="rx", qp=qp)
        qp.register_post(pio_msg)
        post_pio(tb_pio, pio_msg)
        tb_pio.run()

        tb_db = make_testbed()
        qp2 = tb_db.node1.nic.create_qp()
        db_msg = Message(
            op=MessageOp.PUT, payload_bytes=8, inline=True, pio=False,
            recv_target="rx", qp=qp2,
        )
        qp2.register_post(db_msg)
        tb_db.node1.rc.mmio_write(
            Tlp(kind=TlpType.MWR, payload_bytes=8, purpose="doorbell", message=db_msg)
        )
        tb_db.run()
        assert pio_msg.timestamps["wire_out"] < db_msg.timestamps["wire_out"]


class TestAnalyzerView:
    def test_trace_contains_expected_purposes(self):
        tb = make_testbed()
        qp = tb.node1.nic.create_qp(signal_period=1)
        message = Message(op=MessageOp.AM, payload_bytes=8, recv_target="rx", qp=qp)
        qp.register_post(message)
        post_pio(tb, message)
        tb.run()
        downstream = [r.purpose for r in tb.analyzer.tlps(Direction.DOWNSTREAM)]
        upstream = [r.purpose for r in tb.analyzer.tlps(Direction.UPSTREAM)]
        assert downstream == ["pio_post"]
        assert upstream == ["cqe_write"]  # the completion DMA-write

    def test_target_side_traffic_not_on_initiator_analyzer(self):
        """The analyzer sits on node 1 only (Figure 3); the payload
        write happens on node 2's link."""
        tb = make_testbed()
        qp = tb.node1.nic.create_qp()
        message = Message(op=MessageOp.AM, payload_bytes=8, recv_target="rx", qp=qp)
        qp.register_post(message)
        post_pio(tb, message)
        tb.run()
        purposes = {r.purpose for r in tb.analyzer.tlps()}
        assert "payload_write" not in purposes
