"""Unit tests for the NIC offload engine (descriptor match/forward)."""

import pytest

from repro.nic.offload import OffloadDescriptor, OffloadToken
from repro.node.cluster import Cluster
from repro.node.config import SystemConfig
from repro.sim.engine import SimulationError

DET = SystemConfig.paper_testbed(deterministic=True)


def _engines(n=2):
    cluster = Cluster(n, config=DET)
    return cluster, [cluster.node_for_rank(i).rails[0].nic.offload for i in range(n)]


class TestDescriptorValidation:
    def test_expected_must_be_positive(self):
        with pytest.raises(ValueError, match="expected"):
            OffloadDescriptor(tag="t", expected=0)

    def test_payload_must_be_positive(self):
        with pytest.raises(ValueError, match="payload_bytes"):
            OffloadDescriptor(tag="t", payload_bytes=0)

    def test_duplicate_tag_rejected(self):
        _, (engine, _) = _engines()
        engine.post(OffloadDescriptor(tag=("x", 0)))
        with pytest.raises(SimulationError, match="already posted"):
            engine.post(OffloadDescriptor(tag=("x", 0)))

    def test_config_rejects_negative_forward_cost(self):
        import dataclasses

        with pytest.raises(ValueError, match="offload_forward_ns"):
            dataclasses.replace(DET.nic, offload_forward_ns=-1.0)


class TestCreditFlow:
    def test_completion_fires_after_expected_credits(self):
        _, (engine, _) = _engines()
        seen = []
        engine.post(
            OffloadDescriptor(tag="t", expected=3, on_complete=seen.append)
        )
        engine.credit("t")
        engine.credit("t")
        assert seen == []
        engine.credit("t")
        assert len(seen) == 1
        assert engine.descriptors_completed == 1

    def test_early_credits_buffer_until_posted(self):
        # Pipelined iterations can deliver a frame before its
        # descriptor exists; the credit must not be lost.
        _, (engine, _) = _engines()
        engine.credit("late")
        engine.credit("late")
        seen = []
        engine.post(
            OffloadDescriptor(tag="late", expected=2, on_complete=seen.append)
        )
        assert len(seen) == 1

    def test_chain_credits_local_descriptor(self):
        _, (engine, _) = _engines()
        seen = []
        engine.post(
            OffloadDescriptor(tag="r1", expected=1, on_complete=seen.append)
        )
        engine.post(OffloadDescriptor(tag="r0", expected=1, chain_to="r1"))
        engine.credit("r0")
        assert len(seen) == 1


class TestForwardAndCounters:
    def test_forward_crosses_fabric_and_counts(self):
        cluster, (src, dst) = _engines()
        seen = []
        dst.post(OffloadDescriptor(tag="remote", expected=1, on_complete=seen.append))
        src.post(
            OffloadDescriptor(
                tag="go",
                expected=1,
                forward_to=((cluster.node_for_rank(1).rails[0].nic.name, "remote"),),
            )
        )
        src.credit("go")
        cluster.env.run(until=10_000.0)
        assert len(seen) == 1
        assert src.frames_forwarded == 1
        assert dst.frames_matched == 1
        assert src.descriptors_posted == 1
        assert dst.descriptors_completed == 1

    def test_entry_post_arrives_via_pcie(self):
        cluster, (engine, _) = _engines()
        node = cluster.node_for_rank(0)
        seen = []
        engine.post(OffloadDescriptor(tag="e", expected=1, on_complete=seen.append))

        from repro.pcie.packets import Tlp, TlpType

        node.rails[0].rc.mmio_write(
            Tlp(
                kind=TlpType.MWR,
                payload_bytes=64,
                purpose="offload_post",
                message=OffloadToken(tag="e"),
            )
        )
        cluster.env.run(until=10_000.0)
        assert len(seen) == 1

    def test_notification_reaches_host_mailbox(self):
        cluster, (engine, _) = _engines()
        node = cluster.node_for_rank(0)
        mailbox = node.memory.mailbox("offload.test")
        engine.post(
            OffloadDescriptor(tag="n", expected=1, notify_mailbox="offload.test")
        )
        engine.credit("n")
        cluster.env.run(until=10_000.0)
        assert engine.notifications == 1
        assert mailbox.items, "completion CQE never DMA'd to the host"
