"""Unit tests for CQEs and completion moderation (repro.nic.completion)."""

import pytest

from repro.nic.completion import CompletionModeration, Cqe
from repro.nic.descriptor import Message, MessageOp


def message():
    return Message(op=MessageOp.PUT, payload_bytes=8)


class TestCqe:
    def test_completes_must_be_positive(self):
        with pytest.raises(ValueError):
            Cqe(message=message(), completes=0)

    def test_defaults_to_single_completion(self):
        assert Cqe(message=message()).completes == 1


class TestCompletionModeration:
    def test_period_one_signals_everything(self):
        moderation = CompletionModeration(signal_period=1)
        assert all(moderation.on_post() for _ in range(10))

    def test_period_four_signals_every_fourth(self):
        moderation = CompletionModeration(signal_period=4)
        decisions = [moderation.on_post() for _ in range(8)]
        assert decisions == [False, False, False, True] * 2

    def test_pending_unsignaled_counter(self):
        moderation = CompletionModeration(signal_period=3)
        moderation.on_post()
        moderation.on_post()
        assert moderation.pending_unsignaled == 2
        moderation.on_post()  # signaled; resets
        assert moderation.pending_unsignaled == 0

    def test_ucx_default_period(self):
        # §6: "c = 64 in UCX".
        moderation = CompletionModeration(signal_period=64)
        decisions = [moderation.on_post() for _ in range(64)]
        assert decisions.count(True) == 1
        assert decisions[-1] is True

    def test_invalid_period_rejected(self):
        with pytest.raises(ValueError):
            CompletionModeration(signal_period=0)
