"""Unit tests for TxQ / CQ / QueuePair (repro.nic.queues)."""

import pytest

from repro.nic.completion import CompletionModeration, Cqe
from repro.nic.descriptor import Message, MessageOp
from repro.nic.queues import CompletionQueue, QueuePair, TransmitQueue
from repro.pcie.root_complex import HostMemory
from repro.sim import Environment, SimulationError


def make_qp(depth=4, signal_period=1):
    env = Environment()
    memory = HostMemory(env)
    txq = TransmitQueue(depth)
    cq = CompletionQueue(memory.mailbox("cq"))
    qp = QueuePair(txq, cq, CompletionModeration(signal_period))
    return env, qp


def message():
    return Message(op=MessageOp.PUT, payload_bytes=8)


class TestTransmitQueue:
    def test_occupy_and_free(self):
        txq = TransmitQueue(2)
        txq.occupy()
        txq.occupy()
        assert not txq.has_space
        txq.free(2)
        assert txq.has_space
        assert txq.total_posts == 2

    def test_post_to_full_queue_rejected(self):
        txq = TransmitQueue(1)
        txq.occupy()
        with pytest.raises(SimulationError):
            txq.occupy()

    def test_overfree_rejected(self):
        txq = TransmitQueue(2)
        txq.occupy()
        with pytest.raises(SimulationError):
            txq.free(2)

    def test_negative_free_rejected(self):
        with pytest.raises(SimulationError):
            TransmitQueue(2).free(-1)

    def test_nonpositive_depth_rejected(self):
        with pytest.raises(SimulationError):
            TransmitQueue(0)


class TestCompletionQueue:
    def test_poll_empty_returns_none(self):
        _env, qp = make_qp()
        assert qp.cq.try_poll() is None
        assert qp.cq.consumed == 0

    def test_poll_dequeues_fifo(self):
        _env, qp = make_qp()
        first = Cqe(message=message())
        second = Cqe(message=message())
        qp.cq.mailbox.try_put(first)
        qp.cq.mailbox.try_put(second)
        assert qp.cq.try_poll() is first
        assert qp.cq.try_poll() is second
        assert qp.cq.consumed == 2

    def test_available_counts_visible_entries(self):
        _env, qp = make_qp()
        qp.cq.mailbox.try_put(Cqe(message=message()))
        assert qp.cq.available == 1


class TestQueuePair:
    def test_register_post_claims_slot_and_signals(self):
        _env, qp = make_qp(depth=2, signal_period=1)
        msg = message()
        qp.register_post(msg)
        assert qp.txq.occupied == 1
        assert msg.signaled

    def test_moderation_marks_unsignaled(self):
        _env, qp = make_qp(depth=8, signal_period=4)
        messages = [message() for _ in range(4)]
        for msg in messages:
            qp.register_post(msg)
        assert [m.signaled for m in messages] == [False, False, False, True]

    def test_ack_banking_for_unsignaled_run(self):
        """A signaled CQE retires the whole preceding unsignaled run."""
        _env, qp = make_qp(depth=8, signal_period=4)
        messages = [message() for _ in range(4)]
        for msg in messages:
            qp.register_post(msg)
        completes = [qp.on_ack(msg) for msg in messages]
        assert completes == [0, 0, 0, 4]
        assert qp.cqes_written == 1

    def test_consume_cqe_frees_covered_slots(self):
        _env, qp = make_qp(depth=8, signal_period=4)
        msgs = [message() for _ in range(4)]
        for m in msgs:
            qp.register_post(m)
        for m in msgs:
            qp.on_ack(m)
        qp.consume_cqe(Cqe(message=msgs[-1], completes=4))
        assert qp.txq.occupied == 0

    def test_every_signaled_acks_individually(self):
        _env, qp = make_qp(depth=4, signal_period=1)
        msgs = [message() for _ in range(3)]
        for m in msgs:
            qp.register_post(m)
        assert [qp.on_ack(m) for m in msgs] == [1, 1, 1]
        assert qp.cqes_written == 3
