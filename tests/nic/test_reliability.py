"""IB-RC transport recovery: retransmission, dedup, error CQEs.

Runs real two-node traffic under deterministic ``nth`` fault rules so
every scenario is exact: drop the first DATA frame and the retransmit
timer must recover it; drop its ACK and the duplicate DATA must be
re-ACKed without re-delivery; drop *every* transmission and the retry
budget must surface a structured error CQE instead of a hang.
"""

import pytest

from repro.faults import FaultPlan, FaultRule
from repro.llp.uct import UCS_OK, UctWorker
from repro.node import SystemConfig, Testbed


def make_testbed(*rules, **nic_overrides):
    config = SystemConfig.paper_testbed(deterministic=True)
    if nic_overrides:
        import dataclasses

        config = config.evolve(nic=dataclasses.replace(config.nic, **nic_overrides))
    if rules:
        config = config.evolve(faults=FaultPlan(rules=tuple(rules)))
    return Testbed(config)


def run_puts(tb, n=1, payload_bytes=8):
    """Post ``n`` inline puts from node1 and drive them to completion."""
    worker = UctWorker(tb.node1)
    iface = worker.create_iface(signal_period=1)
    remote = UctWorker(tb.node2).create_iface()
    ep = iface.create_ep(remote)
    cqes = []
    iface.add_completion_callback(cqes.append)

    def body():
        for _ in range(n):
            while True:
                status = yield from ep.put_short(payload_bytes)
                if status == UCS_OK:
                    break
                yield from worker.progress()
        yield from worker.progress_until(lambda: len(cqes) >= n)

    tb.env.run(until=tb.env.process(body(), name="driver"))
    tb.run()
    return iface, cqes


class TestRetransmission:
    def test_dropped_data_frame_is_retransmitted_and_delivered_once(self):
        tb = make_testbed(
            FaultRule(site="network.wire", kind="nth", occurrences=(1,))
        )
        _, cqes = run_puts(tb, n=3)
        reliability = tb.node1.nic.reliability
        assert reliability.retransmits >= 1
        assert reliability.exhausted == 0
        assert not reliability.outstanding  # everything settled
        assert tb.node2.nic.messages_received == 3  # exactly once each
        assert all(cqe.status == "ok" for cqe in cqes)

    def test_corrupted_frame_is_discarded_at_nic_and_recovered(self):
        tb = make_testbed(
            FaultRule(
                site="network.wire", kind="nth", action="corrupt", occurrences=(1,)
            )
        )
        _, cqes = run_puts(tb, n=2)
        assert tb.node2.nic.frames_discarded == 1
        assert tb.node1.nic.reliability.retransmits >= 1
        assert tb.node2.nic.messages_received == 2
        assert all(cqe.status == "ok" for cqe in cqes)

    def test_tx_side_drop_recovers_via_retransmit(self):
        tb = make_testbed(FaultRule(site="nic.tx", kind="nth", occurrences=(1,)))
        _, cqes = run_puts(tb, n=2)
        assert tb.node1.nic.frames_dropped_tx == 1
        assert tb.node1.nic.reliability.retransmits >= 1
        assert tb.node2.nic.messages_received == 2
        assert all(cqe.status == "ok" for cqe in cqes)


class TestDuplicateSuppression:
    def test_lost_ack_causes_reack_but_no_redelivery(self):
        tb = make_testbed(
            FaultRule(site="network.ack", kind="nth", occurrences=(1,))
        )
        _, cqes = run_puts(tb, n=2)
        assert tb.fabric.acks_dropped == 1
        # The retransmitted DATA is a duplicate at the target (re-ACKed,
        # not re-delivered) and its second ACK settles the initiator.
        total_suppressed = (
            tb.node1.nic.reliability.duplicates_suppressed
            + tb.node2.nic.reliability.duplicates_suppressed
        )
        assert total_suppressed >= 1
        assert tb.node2.nic.messages_received == 2
        assert len([c for c in cqes if c.status == "ok"]) == 2

    def test_psns_assigned_sequentially_under_faults(self):
        tb = make_testbed(
            FaultRule(site="network.wire", kind="nth", occurrences=(2,))
        )
        iface, _ = run_puts(tb, n=3)
        assert iface.qp.next_psn == 3


class TestBudgetExhaustion:
    def test_error_cqe_surfaces_instead_of_hang(self):
        # Drop every transmission (first send and all retransmits) of
        # the only message: the budget must exhaust and complete the op
        # with a structured error CQE — and the run must terminate.
        tb = make_testbed(
            FaultRule(site="nic.tx", probability=1.0),
            retry_budget=3,
            retransmit_timeout_ns=500.0,
        )
        _, cqes = run_puts(tb, n=1)
        reliability = tb.node1.nic.reliability
        assert reliability.exhausted == 1
        assert reliability.retransmits == 3  # the full budget was spent
        assert not reliability.outstanding
        assert tb.node1.nic.transport_errors == 1
        assert len(cqes) == 1
        assert cqes[0].status == "error"
        assert "retry budget" in cqes[0].error
        assert tb.node2.nic.messages_received == 0

    def test_error_cqe_frees_txq_slot(self):
        tb = make_testbed(
            FaultRule(site="nic.tx", probability=1.0),
            retry_budget=1,
            retransmit_timeout_ns=500.0,
        )
        iface, cqes = run_puts(tb, n=1)
        assert cqes[0].status == "error"
        assert iface.qp.txq.occupied == 0

    def test_error_completions_counted_at_llp(self):
        tb = make_testbed(
            FaultRule(site="nic.tx", probability=1.0),
            retry_budget=1,
            retransmit_timeout_ns=500.0,
        )
        iface, _ = run_puts(tb, n=1)
        assert iface.error_completions == 1


class TestCleanRuns:
    def test_no_plan_means_no_reliability_state(self):
        tb = make_testbed()
        assert tb.node1.nic.reliability is None
        assert tb.node2.nic.reliability is None
        _, cqes = run_puts(tb, n=2)
        assert tb.node2.nic.messages_received == 2
        assert all(cqe.status == "ok" for cqe in cqes)

    def test_clean_run_assigns_no_psns(self):
        tb = make_testbed()
        iface, _ = run_puts(tb, n=2)
        assert iface.qp.next_psn == 0

    def test_plan_without_faults_firing_still_settles_everything(self):
        tb = make_testbed(
            FaultRule(site="network.wire", kind="nth", occurrences=(10_000,))
        )
        _, cqes = run_puts(tb, n=3)
        reliability = tb.node1.nic.reliability
        assert reliability.retransmits == 0
        assert not reliability.outstanding
        assert all(cqe.status == "ok" for cqe in cqes)


class TestTracing:
    def test_recovery_observable_in_trace(self):
        from repro.trace import recovery_summary, trace_session

        with trace_session() as session:
            tb = make_testbed(
                FaultRule(site="network.wire", kind="nth", occurrences=(1,))
            )
            run_puts(tb, n=2)
        counts = recovery_summary(session.instants())
        assert counts["fault"] == 1
        assert counts["retransmit"] >= 1
        assert counts["transport_error"] == 0

    def test_budget_exhaustion_traced_as_transport_error(self):
        from repro.trace import recovery_summary, trace_session

        with trace_session() as session:
            tb = make_testbed(
                FaultRule(site="nic.tx", probability=1.0),
                retry_budget=1,
                retransmit_timeout_ns=500.0,
            )
            run_puts(tb, n=1)
        counts = recovery_summary(session.instants())
        assert counts["transport_error"] == 1
        assert counts["retransmit"] == 1


class TestConfigValidation:
    def test_retransmit_knobs_validated(self):
        from repro.nic.config import NicConfig

        with pytest.raises(ValueError):
            NicConfig(retransmit_timeout_ns=0.0)
        with pytest.raises(ValueError):
            NicConfig(retransmit_backoff=0.5)
        with pytest.raises(ValueError):
            NicConfig(retry_budget=-1)
