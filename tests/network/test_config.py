"""Unit tests for interconnect configuration (repro.network.config)."""

import pytest

from repro.network.config import NetworkConfig


class TestDefaults:
    def test_paper_values(self):
        config = NetworkConfig()
        assert config.wire_latency_ns == pytest.approx(274.81)
        assert config.switch_latency_ns == pytest.approx(108.0)
        assert config.switch_count == 1

    def test_one_way_latency_is_network_total(self):
        # Table 1: Network = Wire + Switch = 382.81 ns.
        assert NetworkConfig().one_way_latency() == pytest.approx(382.81)

    def test_direct_connection(self):
        direct = NetworkConfig().without_switch()
        assert direct.one_way_latency() == pytest.approx(274.81)
        assert direct.switch_count == 0

    def test_multi_hop(self):
        config = NetworkConfig(switch_count=3)
        assert config.one_way_latency() == pytest.approx(274.81 + 3 * 108.0)


class TestSerialization:
    def test_infinite_bandwidth_ignores_size(self):
        config = NetworkConfig()
        assert config.one_way_latency(4096) == config.one_way_latency(0)

    def test_finite_bandwidth_adds_time(self):
        config = NetworkConfig(bandwidth_bytes_per_ns=12.5)  # 100 Gb/s
        assert config.one_way_latency(125) == pytest.approx(382.81 + 10.0)

    def test_negative_frame_rejected(self):
        with pytest.raises(ValueError):
            NetworkConfig().one_way_latency(-1)


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"wire_latency_ns": -1},
            {"switch_latency_ns": -1},
            {"switch_count": -1},
            {"bandwidth_bytes_per_ns": 0},
            {"ack_turnaround_ns": -1},
        ],
    )
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            NetworkConfig(**kwargs)
