"""Per-link FIFO contention: flows sharing a cable serialize.

Two symmetric 64-byte sends converge on rank 1 of a 3-host ring whose
wire bandwidth is 0.01 B/ns (6400 ns of serialisation per frame).  Both
data frames must cross the shared ``ring.s1 -> node1.nic`` cable, so
the second delivery completes one full serialisation after the first —
queueing, not free overlap.

The completion times and the traced-timeline digest are golden-pinned
(deterministic config, exact floats).  The digest comparison runs this
file in a **fresh subprocess** because timelines embed process-global
identity counters (message/frame ids) — in-process test order would
shift them; the physics timestamps pinned in-process do not depend on
those counters.  To re-pin after an intentional timing change::

    PYTHONPATH=src python tests/network/test_link_contention.py
"""

import hashlib
import pathlib
import subprocess
import sys

import pytest

from repro.hlp.mpi import MpiStack
from repro.node.cluster import Cluster
from repro.node.config import SystemConfig

#: 64 bytes at 0.01 B/ns.
SERIALIZE_NS = 6400.0

GOLDEN = {
    "from0": float.fromhex("0x1.4d8aeb851eb37p+14"),  # 21346.73 ns
    "from2": float.fromhex("0x1.b18151eb85182p+14"),  # 27744.33 ns
    "digest": "23263778c6be393b749e75dada905c130e71c83aab930b17cdafd815e9f6dfe6",
}


def build_cluster(bandwidth: float = 0.01) -> Cluster:
    config = (
        SystemConfig.builder()
        .deterministic()
        .network(bandwidth_bytes_per_ns=bandwidth)
        .topology("ring")
        .build()
    )
    return Cluster(3, config=config)


def run_scenario(cluster: Cluster) -> dict[str, float]:
    """Concurrent node0 -> node1 and node2 -> node1 64-byte sends."""
    stacks = [MpiStack(node) for node in cluster.nodes]
    c01 = stacks[0].connect(stacks[1])
    c10 = stacks[1].connect(stacks[0])
    c21 = stacks[2].connect(stacks[1])
    c12 = stacks[1].connect(stacks[2])
    done: dict[str, float] = {}

    def sender(comm):
        yield from comm.isend(64)

    def receiver():
        r0 = yield from c10.irecv(64)
        r2 = yield from c12.irecv(64)
        yield from c10.wait(r0)
        done["from0"] = cluster.env.now
        yield from c12.wait(r2)
        done["from2"] = cluster.env.now

    env = cluster.env
    procs = [
        env.process(sender(c01), name="send0"),
        env.process(sender(c21), name="send2"),
        env.process(receiver(), name="recv1"),
    ]
    env.run(until=env.all_of(procs))
    return done


def capture_digest() -> tuple[dict[str, float], str]:
    """The scenario under tracing; for fresh-subprocess golden capture."""
    from repro.trace import trace_session
    from repro.trace.golden import timeline_lines

    with trace_session() as session:
        done = run_scenario(build_cluster())
    lines = "\n".join(timeline_lines(session.tracers))
    return done, hashlib.sha256(lines.encode()).hexdigest()


class TestSharedLinkSerializes:
    @pytest.fixture(scope="class")
    def outcome(self):
        cluster = build_cluster()
        done = run_scenario(cluster)
        return cluster, done

    def test_second_delivery_waits_one_serialization(self, outcome):
        _, done = outcome
        gap = done["from2"] - done["from0"]
        assert gap == pytest.approx(SERIALIZE_NS, rel=0.01)

    def test_completion_times_are_golden(self, outcome):
        _, done = outcome
        assert done["from0"] == GOLDEN["from0"]
        assert done["from2"] == GOLDEN["from2"]

    def test_shared_link_stats_show_queueing(self, outcome):
        cluster, _ = outcome
        stats = cluster.fabric.link_stats()
        shared = stats["ring.s1->node1.nic"]
        assert shared["frames"] == 2
        assert shared["busy_ns"] == pytest.approx(2 * SERIALIZE_NS)
        assert shared["peak_inflight"] == 2
        # Each flow's private first hop never queues.
        for private in ("node0.nic->ring.s0", "node2.nic->ring.s2"):
            assert stats[private]["frames"] == 1
            assert stats[private]["peak_inflight"] == 1

    def test_infinite_bandwidth_does_not_serialize(self):
        cluster = build_cluster(bandwidth=float("inf"))
        done = run_scenario(cluster)
        gap = done["from2"] - done["from0"]
        assert gap < SERIALIZE_NS / 10
        shared = cluster.fabric.link_stats()["ring.s1->node1.nic"]
        assert shared["frames"] == 2
        assert shared["busy_ns"] == 0.0


class TestGoldenTimeline:
    def test_timeline_digest_pinned(self):
        proc = subprocess.run(
            [sys.executable, str(pathlib.Path(__file__).resolve())],
            capture_output=True,
            text=True,
            cwd=pathlib.Path(__file__).resolve().parents[2],
            env={
                "PYTHONPATH": str(
                    pathlib.Path(__file__).resolve().parents[2] / "src"
                ),
                "PATH": "/usr/bin:/bin",
            },
            timeout=120,
        )
        assert proc.returncode == 0, proc.stderr
        digest = proc.stdout.strip().splitlines()[-1].split()[-1]
        assert digest == GOLDEN["digest"]


if __name__ == "__main__":
    captured, timeline_digest = capture_digest()
    print("from0:", captured["from0"].hex())
    print("from2:", captured["from2"].hex())
    print("digest:", timeline_digest)
