"""Incast on a shared fabric: the sink's egress link is the hot spot.

Satellite check for the traffic generator: drive the N-to-1 incast
pattern over a ``fat_tree:4`` topology with finite wire bandwidth and
verify the contention shows up where datacenter experience says it
must — on the shared links funnelling into the sink — while per-link
frame totals stay exactly conservation-accurate.
"""

import pytest

from repro.network.topology import TopologySpec
from repro.node.cluster import Cluster
from repro.node.config import SystemConfig
from repro.traffic.patterns import incast_pattern
from repro.traffic.workloads import run_pattern

BANDWIDTH = 0.01  # bytes/ns: an 8-byte frame serialises for 800 ns
PAYLOAD = 8
MESSAGES_PER_PAIR = 4


@pytest.fixture(scope="module")
def incast_run():
    config = (
        SystemConfig.builder()
        .deterministic()
        .network(
            bandwidth_bytes_per_ns=BANDWIDTH,
            topology=TopologySpec.parse("fat_tree:4"),
        )
        .build()
    )
    cluster = Cluster(4, config=config)
    result = run_pattern(
        cluster,
        incast_pattern(cluster.n_ranks, sink=0),
        payload_bytes=PAYLOAD,
        messages_per_pair=MESSAGES_PER_PAIR,
    )
    return cluster, result


def _uplink(cluster, nic_name):
    (switch,) = cluster.topology.adjacency[nic_name]
    return switch, nic_name


class TestIncastContention:
    def test_sink_ingress_carries_every_frame(self, incast_run):
        cluster, result = incast_run
        switch, sink_nic = _uplink(cluster, cluster.nodes[0].nic.name)
        ingress = result["link_stats"][f"{switch}->{sink_nic}"]
        assert ingress["frames"] == result["messages"]

    def test_sender_uplinks_carry_only_their_own_frames(self, incast_run):
        cluster, result = incast_run
        for node in cluster.nodes[1:]:
            switch, nic = _uplink(cluster, node.nic.name)
            uplink = result["link_stats"][f"{nic}->{switch}"]
            assert uplink["frames"] == MESSAGES_PER_PAIR, node.name

    def test_shared_path_dominates_busy_time(self, incast_run):
        cluster, result = incast_run
        stats = result["link_stats"]
        switch, sink_nic = _uplink(cluster, cluster.nodes[0].nic.name)
        ingress = stats[f"{switch}->{sink_nic}"]
        # All 12 frames serialise through the one last-hop cable.
        assert ingress["busy_ns"] == pytest.approx(
            result["messages"] * PAYLOAD / BANDWIDTH
        )
        per_sender_busy = [
            stats[f"{nic}->{sw}"]["busy_ns"]
            for node in cluster.nodes[1:]
            for sw, nic in [_uplink(cluster, node.nic.name)]
        ]
        assert ingress["busy_ns"] > max(per_sender_busy)
        # The campaign roll-up points at the shared path, not a sender.
        busiest = result["link_busiest_link"]
        assert busiest.endswith(f"->{sink_nic}") or busiest.endswith(f"->{switch}")
        assert result["link_busiest_link_busy_ns"] == ingress["busy_ns"]

    def test_queueing_observed_on_the_shared_path(self, incast_run):
        cluster, result = incast_run
        switch, sink_nic = _uplink(cluster, cluster.nodes[0].nic.name)
        ingress = result["link_stats"][f"{switch}->{sink_nic}"]
        assert ingress["peak_inflight"] >= 2
        assert result["link_peak_inflight"] >= ingress["peak_inflight"]

    def test_frame_conservation_across_the_fabric(self, incast_run):
        cluster, result = incast_run
        stats = result["link_stats"]
        # Host edges: data frames into the sink, ACK frames back out.
        switch, sink_nic = _uplink(cluster, cluster.nodes[0].nic.name)
        assert stats[f"{sink_nic}->{switch}"]["frames"] == result["messages"]
        # The run ends when the sink has every payload; the final ACKs
        # may still be in flight, so sender downlinks show at most one
        # ACK short of the full count.
        for node in cluster.nodes[1:]:
            sw, nic = _uplink(cluster, node.nic.name)
            arrived = stats[f"{sw}->{nic}"]["frames"]
            assert MESSAGES_PER_PAIR - 1 <= arrived <= MESSAGES_PER_PAIR, node.name
        assert result["link_total_frames"] == sum(
            entry["frames"] for entry in stats.values()
        )
