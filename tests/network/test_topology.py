"""Tests for repro.network.topology: generators, routing, minimality."""

from collections import deque

import pytest

from repro.network.config import NetworkConfig
from repro.network.topology import KINDS, Topology, TopologySpec


def hosts(n):
    return [f"node{i}" for i in range(n)]


def bfs_distance(topology: Topology, src: str, dst: str) -> int:
    """Independent shortest-path length (in edges) for cross-checking."""
    seen = {src: 0}
    frontier = deque([src])
    while frontier:
        node = frontier.popleft()
        if node == dst:
            return seen[node]
        for neighbour in topology.adjacency[node]:
            if neighbour not in seen:
                seen[neighbour] = seen[node] + 1
                frontier.append(neighbour)
    raise AssertionError(f"{dst} unreachable from {src}")


class TestSpec:
    def test_parse_round_trips(self):
        assert TopologySpec.parse("ring") == TopologySpec(kind="ring")
        assert TopologySpec.parse("torus:4x2") == TopologySpec(
            kind="torus", dims=(4, 2)
        )
        assert TopologySpec.parse("fat_tree:8") == TopologySpec(kind="fat_tree", k=8)
        assert TopologySpec.parse("fat_tree") == TopologySpec(kind="fat_tree", k=4)

    @pytest.mark.parametrize("text", ["mesh", "torus", "fat_tree:x", ""])
    def test_parse_rejects_garbage(self, text):
        with pytest.raises(ValueError):
            TopologySpec.parse(text)

    def test_validation(self):
        with pytest.raises(ValueError):
            TopologySpec(kind="dragonfly")
        with pytest.raises(ValueError):
            TopologySpec(kind="fat_tree", k=3)  # odd arity
        with pytest.raises(ValueError):
            TopologySpec(kind="torus", dims=())
        with pytest.raises(ValueError):
            TopologySpec(kind="torus", dims=(4, 0))

    def test_kinds_is_exhaustive(self):
        for kind in KINDS:
            spec = TopologySpec.parse(f"{kind}:2x2" if kind == "torus" else kind)
            assert spec.kind == kind

    def test_spec_is_hashable_config_material(self):
        # The spec lives inside NetworkConfig and keys the result cache.
        config = NetworkConfig(topology=TopologySpec.parse("fat_tree:4"))
        assert hash(config.topology) == hash(TopologySpec(kind="fat_tree", k=4))

    def test_build_rejects_degenerate_host_lists(self):
        spec = TopologySpec(kind="ring")
        with pytest.raises(ValueError):
            spec.build(["only"])
        with pytest.raises(ValueError):
            spec.build(["a", "a"])

    def test_torus_capacity_enforced(self):
        with pytest.raises(ValueError):
            TopologySpec(kind="torus", dims=(2, 2)).build(hosts(5))


class TestGenerators:
    @pytest.mark.parametrize(
        "spec_text,n",
        [("ring", 4), ("ring", 7), ("torus:3x3", 9), ("torus:4x2", 6),
         ("fat_tree:4", 4), ("fat_tree:4", 16), ("fat_tree:4", 64)],
    )
    def test_hosts_have_degree_one(self, spec_text, n):
        topology = TopologySpec.parse(spec_text).build(hosts(n))
        for host in topology.hosts:
            assert len(topology.adjacency[host]) == 1

    def test_ring_switch_cycle(self):
        topology = TopologySpec.parse("ring").build(hosts(5))
        assert len(topology.switches) == 5
        for switch in topology.switches:
            # one host + two ring neighbours
            assert len(topology.adjacency[switch]) == 3

    def test_fat_tree_tier_counts(self):
        topology = TopologySpec.parse("fat_tree:4").build(hosts(16))
        edge = [s for s in topology.switches if "e" in s.split("p")[-1]]
        aggr = [s for s in topology.switches if "a" in s.split("p")[-1]]
        core = [s for s in topology.switches if s.startswith("ft.c")]
        assert len(edge) == 8 and len(aggr) == 8 and len(core) == 4

    def test_fat_tree_oversubscribed_blocks(self):
        # 64 hosts on k=4: 8 per edge switch, contiguous rank blocks.
        topology = TopologySpec.parse("fat_tree:4").build(hosts(64))
        first_edge = topology.adjacency["node0"][0]
        for i in range(8):
            assert topology.adjacency[f"node{i}"][0] == first_edge
        assert topology.adjacency["node8"][0] != first_edge

    def test_build_is_deterministic(self):
        a = TopologySpec.parse("fat_tree:4").build(hosts(16))
        b = TopologySpec.parse("fat_tree:4").build(hosts(16))
        assert a.adjacency == b.adjacency
        assert a.links == b.links
        for src in a.hosts:
            for dst in a.hosts:
                if src != dst:
                    assert a.path(src, dst) == b.path(src, dst)


class TestRouting:
    @pytest.fixture(scope="class")
    def fat_tree(self):
        return TopologySpec.parse("fat_tree:4").build(hosts(16))

    def test_every_pair_resolves_to_a_minimal_path(self, fat_tree):
        """ISSUE acceptance: every (src, dst) pair in a k=4 fat-tree
        routes along a path of provably minimal length."""
        for src in fat_tree.hosts:
            for dst in fat_tree.hosts:
                if src == dst:
                    continue
                path = fat_tree.path(src, dst)
                assert path[0] == src and path[-1] == dst
                # consecutive path nodes are adjacent
                for u, v in zip(path, path[1:]):
                    assert v in fat_tree.adjacency[u]
                # only switches forward
                assert all(n in fat_tree.switches for n in path[1:-1])
                assert len(path) - 1 == bfs_distance(fat_tree, src, dst)

    def test_intra_edge_vs_cross_pod_hop_counts(self, fat_tree):
        # node0/node1 share an edge switch; node0 -> node15 crosses pods.
        assert fat_tree.hop_counts("node0", "node1") == (2, 1)
        assert fat_tree.hop_counts("node0", "node15") == (6, 5)

    def test_path_network_latency_composes_hops(self, fat_tree):
        config = NetworkConfig()
        wires, switches = fat_tree.hop_counts("node0", "node15")
        assert fat_tree.path_network_latency_ns(
            "node0", "node15", config
        ) == pytest.approx(
            wires * config.wire_latency_ns + switches * config.switch_latency_ns
        )

    def test_ring_routes_take_the_short_way_round(self):
        topology = TopologySpec.parse("ring").build(hosts(6))
        wires, switches = topology.hop_counts("node0", "node1")
        assert (wires, switches) == (3, 2)
        # node0 -> node5 goes backwards round the ring, not through 5 switches
        assert topology.hop_counts("node0", "node5") == (3, 2)

    def test_unknown_nodes_raise(self, fat_tree):
        with pytest.raises(KeyError):
            fat_tree.next_hop("node0", "nowhere")
        with pytest.raises(KeyError):
            fat_tree.next_hop("nowhere", "node0")

    def test_trivial_path(self, fat_tree):
        assert fat_tree.path("node3", "node3") == ["node3"]
