"""Unit tests for the two-node fabric (repro.network.fabric)."""

import pytest

from repro.network.config import NetworkConfig
from repro.network.fabric import Fabric, FrameKind, NetworkFrame
from repro.network.switch import Switch
from repro.network.wire import Wire
from repro.sim import Environment, SimulationError


class FakePort:
    """Minimal NicPort capturing arrivals."""

    def __init__(self, name: str, env: Environment) -> None:
        self.name = name
        self.env = env
        self.arrivals: list[tuple[float, NetworkFrame]] = []

    def on_network_frame(self, frame: NetworkFrame) -> None:
        self.arrivals.append((self.env.now, frame))


def make_fabric(config: NetworkConfig | None = None):
    env = Environment()
    fabric = Fabric(env, config or NetworkConfig())
    a = FakePort("a", env)
    b = FakePort("b", env)
    fabric.attach(a)
    fabric.attach(b)
    return env, fabric, a, b


class TestTopology:
    def test_attach_builds_both_paths(self):
        _env, fabric, a, b = make_fabric()
        assert fabric.path_stages("a", "b")
        assert fabric.path_stages("b", "a")

    def test_path_structure_wire_then_switches(self):
        _env, fabric, _a, _b = make_fabric(NetworkConfig(switch_count=2))
        stages = fabric.path_stages("a", "b")
        assert isinstance(stages[0], Wire)
        assert all(isinstance(s, Switch) for s in stages[1:])
        assert len(stages) == 3

    def test_third_port_builds_all_pair_paths(self):
        env, fabric, _a, _b = make_fabric()
        c = FakePort("c", env)
        fabric.attach(c)
        for src, dst in (("a", "c"), ("c", "a"), ("b", "c"), ("c", "b")):
            assert fabric.path_stages(src, dst)

    def test_peer_of_ambiguous_with_three_ports(self):
        env, fabric, _a, _b = make_fabric()
        fabric.attach(FakePort("c", env))
        with pytest.raises(SimulationError, match="ambiguous"):
            fabric.peer_of("a")

    def test_three_port_delivery(self):
        env, fabric, _a, b = make_fabric()
        c = FakePort("c", env)
        fabric.attach(c)
        fabric.send_data("a", "c", message="to-c", size_bytes=8)
        fabric.send_data("c", "b", message="to-b", size_bytes=8)
        env.run()
        assert [f.message for _t, f in c.arrivals] == ["to-c"]
        assert [f.message for _t, f in b.arrivals] == ["to-b"]

    def test_duplicate_name_rejected(self):
        env = Environment()
        fabric = Fabric(env, NetworkConfig())
        fabric.attach(FakePort("a", env))
        with pytest.raises(SimulationError):
            fabric.attach(FakePort("a", env))

    def test_peer_of(self):
        _env, fabric, _a, _b = make_fabric()
        assert fabric.peer_of("a") == "b"
        assert fabric.peer_of("b") == "a"
        with pytest.raises(SimulationError):
            fabric.peer_of("zzz")


class TestTransmission:
    def test_data_frame_arrives_after_network_latency(self):
        env, fabric, _a, b = make_fabric()
        fabric.send_data("a", "b", message="m", size_bytes=8)
        env.run()
        when, frame = b.arrivals[0]
        assert when == pytest.approx(382.81)  # wire + one switch
        assert frame.kind is FrameKind.DATA
        assert frame.message == "m"
        assert fabric.frames_delivered == 1

    def test_direct_topology_is_wire_only(self):
        env, fabric, _a, b = make_fabric(NetworkConfig().without_switch())
        fabric.send_data("a", "b", message=None, size_bytes=8)
        env.run()
        assert b.arrivals[0][0] == pytest.approx(274.81)

    def test_ack_retraces_reverse_path(self):
        env, fabric, a, b = make_fabric()
        data = fabric.send_data("a", "b", message="m", size_bytes=8)
        env.run()
        fabric.send_ack(data)
        env.run()
        when, ack = a.arrivals[0]
        assert ack.kind is FrameKind.ACK
        assert ack.message == "m"
        assert when == pytest.approx(2 * 382.81)
        assert fabric.acks_delivered == 1

    def test_unknown_path_rejected(self):
        _env, fabric, _a, _b = make_fabric()
        with pytest.raises(SimulationError):
            fabric.transmit(
                NetworkFrame(kind=FrameKind.DATA, src="x", dst="y", size_bytes=0)
            )

    def test_frame_ids_unique(self):
        _env, fabric, _a, _b = make_fabric()
        f1 = fabric.send_data("a", "b", message=None, size_bytes=0)
        f2 = fabric.send_data("a", "b", message=None, size_bytes=0)
        assert f1.frame_id != f2.frame_id
