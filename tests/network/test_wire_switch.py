"""Unit tests for Wire and Switch stages (repro.network)."""

import pytest

from repro.network.config import NetworkConfig
from repro.network.switch import Switch
from repro.network.wire import Wire
from repro.sim import Environment


class TestWire:
    def test_delivers_after_wire_latency(self):
        env = Environment()
        deliveries = []
        wire = Wire(env, NetworkConfig(), deliver=lambda f: deliveries.append(env.now))
        wire.transmit("frame", 8)
        env.run()
        assert deliveries == [pytest.approx(274.81)]
        assert wire.frames_carried == 1

    def test_serialization_term(self):
        env = Environment()
        config = NetworkConfig(bandwidth_bytes_per_ns=10.0)
        wire = Wire(env, config, deliver=lambda f: None)
        assert wire.latency(100) == pytest.approx(274.81 + 10.0)

    def test_frames_preserve_order(self):
        env = Environment()
        order = []
        wire = Wire(env, NetworkConfig(), deliver=order.append)

        def producer():
            wire.transmit("a", 8)
            yield env.timeout(1.0)
            wire.transmit("b", 8)

        env.process(producer())
        env.run()
        assert order == ["a", "b"]


class TestSwitch:
    def test_adds_switch_latency(self):
        env = Environment()
        deliveries = []
        switch = Switch(env, NetworkConfig(), forward=lambda f: deliveries.append(env.now))
        switch.transmit("frame")
        env.run()
        assert deliveries == [pytest.approx(108.0)]
        assert switch.frames_forwarded == 1

    def test_egress_contention_serialises(self):
        env = Environment()
        deliveries = []
        switch = Switch(
            env,
            NetworkConfig(),
            forward=lambda f: deliveries.append(env.now),
            egress_serialization_ns=10.0,
        )
        switch.transmit("a")
        switch.transmit("b")
        env.run()
        assert deliveries[0] == pytest.approx(118.0)
        assert deliveries[1] == pytest.approx(128.0)

    def test_negative_serialization_rejected(self):
        env = Environment()
        with pytest.raises(ValueError):
            Switch(env, NetworkConfig(), forward=lambda f: None, egress_serialization_ns=-1)
