"""Injector evaluation: triggers, stream isolation, zero perturbation."""

import pytest

from repro.faults import FaultInjector, FaultPlan, FaultRule
from repro.sim import Environment
from repro.sim.rng import RandomStreams


class ExplodingStreams:
    """Stands in for RandomStreams where no draw may ever happen."""

    def get(self, name):  # pragma: no cover - must not run
        raise AssertionError(f"random stream {name!r} opened unexpectedly")


def make_injector(*rules, streams=None, env=None):
    env = env or Environment()
    return (
        FaultInjector(FaultPlan(rules=tuple(rules)), streams or RandomStreams(7), env),
        env,
    )


class TestTriggers:
    def test_nth_fires_on_exact_occurrences_without_randomness(self):
        injector, _ = make_injector(
            FaultRule(site="network.wire", kind="nth", occurrences=(2, 4)),
            streams=ExplodingStreams(),
        )
        site = injector.site("network.wire")
        decisions = [site.decide() for _ in range(5)]
        assert decisions == [None, "drop", None, "drop", None]
        assert site.injected == 2

    def test_probability_one_always_fires(self):
        injector, _ = make_injector(
            FaultRule(site="network.wire", action="corrupt", probability=1.0)
        )
        site = injector.site("network.wire")
        assert [site.decide() for _ in range(3)] == ["corrupt"] * 3

    def test_probability_zero_never_fires(self):
        injector, _ = make_injector(FaultRule(site="network.wire", probability=0.0))
        site = injector.site("network.wire")
        assert all(site.decide() is None for _ in range(50))

    def test_window_respects_virtual_time(self):
        env = Environment()
        injector, _ = make_injector(
            FaultRule(
                site="network.wire", kind="window",
                probability=1.0, window_ns=(100.0, 200.0),
            ),
            env=env,
        )
        site = injector.site("network.wire")
        assert site.decide() is None  # t=0: before the window
        env.defer(lambda: None, 150.0)
        env.run()
        assert site.decide() == "drop"  # t=150: inside
        env.defer(lambda: None, 100.0)
        env.run()
        assert site.decide() is None  # t=250: after

    def test_first_match_wins_in_plan_order(self):
        injector, _ = make_injector(
            FaultRule(site="network.wire", kind="nth", occurrences=(1,)),
            FaultRule(site="network.wire", action="corrupt", probability=1.0),
        )
        site = injector.site("network.wire")
        # Opportunity 1: the nth rule fires first, shadowing the
        # always-on corrupt rule; afterwards the corrupt rule wins.
        assert site.decide() == "drop"
        assert site.decide() == "corrupt"

    def test_stochastic_rules_draw_from_independent_streams(self):
        seed_runs = []
        for _ in range(2):
            injector, _ = make_injector(
                FaultRule(site="network.wire", probability=0.5),
                FaultRule(site="network.wire", action="corrupt", probability=0.5),
                streams=RandomStreams(42),
            )
            site = injector.site("network.wire")
            seed_runs.append([site.decide() for _ in range(64)])
        # Deterministic: same seed, same plan, same decisions.
        assert seed_runs[0] == seed_runs[1]
        # Removing the first rule must not change the second rule's
        # stream (it is named by plan index, but its draws are its own).
        injector, _ = make_injector(
            FaultRule(site="network.wire", probability=0.5),
            streams=RandomStreams(42),
        )
        site = injector.site("network.wire")
        solo = [site.decide() for _ in range(64)]
        paired_first_rule_fires = [d == "drop" for d in seed_runs[0]]
        # Wherever the paired run dropped, the solo run must drop too:
        # rule 0's stream draws identically with or without rule 1.
        for solo_decision, paired_dropped in zip(solo, paired_first_rule_fires):
            if paired_dropped:
                assert solo_decision == "drop"


class TestZeroPerturbation:
    def test_none_plan_allocates_nothing(self):
        injector = FaultInjector(None, ExplodingStreams(), Environment())
        assert not injector.enabled
        assert injector.site("network.wire") is None
        assert injector.stats() == {"enabled": False, "injected": 0, "sites": {}}

    def test_empty_plan_is_equivalent_to_none(self):
        injector = FaultInjector(FaultPlan(), ExplodingStreams(), Environment())
        assert not injector.enabled
        assert injector.site("network.wire") is None

    def test_untargeted_site_returns_none(self):
        injector, _ = make_injector(FaultRule(site="pcie.tlp", probability=0.5))
        assert injector.site("network.wire") is None
        assert injector.site("pcie.tlp") is not None

    def test_streams_opened_lazily_only_on_first_decide(self):
        # Building the injector must not open streams; deciding must.
        injector = FaultInjector(
            FaultPlan(rules=(FaultRule(site="network.wire", probability=0.5),)),
            ExplodingStreams(),
            Environment(),
        )
        site = injector.site("network.wire")
        with pytest.raises(AssertionError, match="opened unexpectedly"):
            site.decide()


class TestStats:
    def test_stats_count_opportunities_and_fires(self):
        injector, _ = make_injector(
            FaultRule(site="network.wire", kind="nth", occurrences=(1, 2)),
        )
        site = injector.site("network.wire")
        for _ in range(5):
            site.decide()
        stats = injector.stats()
        assert stats["enabled"]
        assert stats["injected"] == 2
        rule_stats = stats["sites"]["network.wire"]["rules"][0]
        assert rule_stats["opportunities"] == 5
        assert rule_stats["fired"] == 2
        assert rule_stats["stream"] is None  # nth rules are RNG-free

    def test_fault_instants_traced(self):
        from repro.trace import trace_session

        with trace_session():
            env = Environment()
            injector = FaultInjector(
                FaultPlan(
                    rules=(
                        FaultRule(site="network.wire", kind="nth", occurrences=(1,)),
                    )
                ),
                RandomStreams(7),
                env,
            )
            injector.site("network.wire").decide(msg=42)
            marks = env.tracer.instants()
        assert len(marks) == 1
        mark = marks[0]
        assert (mark.layer, mark.name) == ("faults", "fault")
        assert mark.attrs["site"] == "network.wire"
        assert mark.attrs["action"] == "drop"
        assert mark.attrs["msg"] == 42
