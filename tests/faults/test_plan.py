"""Schema and serialization tests for declarative fault plans."""

import math

import pytest

from repro.faults import (
    ACTIONS,
    KINDS,
    SITES,
    FaultPlan,
    FaultPlanError,
    FaultRule,
    lossy_network_plan,
)


class TestFaultRuleValidation:
    def test_defaults_are_a_valid_probabilistic_rule(self):
        rule = FaultRule(site="network.wire")
        assert rule.kind == "probabilistic"
        assert rule.action == "drop"
        assert rule.stochastic

    def test_unknown_site_rejected(self):
        with pytest.raises(FaultPlanError, match="unknown fault site"):
            FaultRule(site="network.router")

    def test_unknown_kind_rejected(self):
        with pytest.raises(FaultPlanError, match="unknown rule kind"):
            FaultRule(site="network.wire", kind="bursty")

    def test_unknown_action_rejected(self):
        with pytest.raises(FaultPlanError, match="unknown action"):
            FaultRule(site="network.wire", action="delay")

    @pytest.mark.parametrize("probability", [-0.1, 1.5])
    def test_probability_bounds(self, probability):
        with pytest.raises(FaultPlanError, match="probability"):
            FaultRule(site="network.wire", probability=probability)

    def test_nth_requires_occurrences(self):
        with pytest.raises(FaultPlanError, match="at least one occurrence"):
            FaultRule(site="network.wire", kind="nth")

    def test_nth_occurrences_sorted_and_deduped(self):
        rule = FaultRule(site="network.wire", kind="nth", occurrences=(5, 2, 2))
        assert rule.occurrences == (2, 5)
        assert not rule.stochastic

    @pytest.mark.parametrize("occurrences", [(0,), (-1,), (1.5,), (True,)])
    def test_nth_occurrence_values_validated(self, occurrences):
        with pytest.raises(FaultPlanError, match="occurrences"):
            FaultRule(site="network.wire", kind="nth", occurrences=occurrences)

    def test_occurrences_rejected_on_other_kinds(self):
        with pytest.raises(FaultPlanError, match="only applies to nth"):
            FaultRule(site="network.wire", occurrences=(1,))

    def test_window_requires_bounds(self):
        with pytest.raises(FaultPlanError, match="window_ns"):
            FaultRule(site="network.wire", kind="window", probability=0.5)

    def test_window_bounds_ordered(self):
        with pytest.raises(FaultPlanError, match="start < end"):
            FaultRule(
                site="network.wire", kind="window",
                probability=0.5, window_ns=(100.0, 100.0),
            )

    def test_unbounded_window_with_certain_loss_rejected(self):
        with pytest.raises(FaultPlanError, match="recovery"):
            FaultRule(
                site="network.wire", kind="window",
                probability=1.0, window_ns=(0.0, math.inf),
            )

    def test_unbounded_window_allowed_below_certainty(self):
        rule = FaultRule(
            site="network.wire", kind="window",
            probability=0.5, window_ns=(0.0, math.inf),
        )
        assert rule.window_ns == (0.0, math.inf)

    def test_window_ns_rejected_on_other_kinds(self):
        with pytest.raises(FaultPlanError, match="only applies to window"):
            FaultRule(site="network.wire", window_ns=(0.0, 100.0))

    def test_plan_error_is_a_value_error(self):
        assert issubclass(FaultPlanError, ValueError)


class TestSerialization:
    def test_rule_round_trip(self):
        for rule in (
            FaultRule(site="pcie.tlp", action="corrupt", probability=0.25),
            FaultRule(site="network.ack", kind="nth", occurrences=(1, 7)),
            FaultRule(
                site="nic.tx", kind="window",
                probability=0.5, window_ns=(1e3, 2e3), stream="custom",
            ),
        ):
            assert FaultRule.from_dict(rule.to_dict()) == rule

    def test_plan_round_trip_via_json(self):
        plan = lossy_network_plan(drop_prob=0.1, corrupt_prob=0.05, ack_loss_prob=0.02)
        import json

        rebuilt = FaultPlan.from_json(json.dumps(plan.to_dict()))
        assert rebuilt == plan
        assert rebuilt.name == "lossy-network"

    def test_unknown_rule_field_rejected(self):
        with pytest.raises(FaultPlanError, match="unknown rule field"):
            FaultRule.from_dict({"site": "network.wire", "burst": 3})

    def test_unknown_plan_field_rejected(self):
        with pytest.raises(FaultPlanError, match="unknown plan field"):
            FaultPlan.from_dict({"rules": [], "version": 2})

    def test_missing_site_rejected(self):
        with pytest.raises(FaultPlanError, match="missing required field"):
            FaultRule.from_dict({"kind": "nth", "occurrences": [1]})

    def test_invalid_json_rejected(self):
        with pytest.raises(FaultPlanError, match="invalid JSON"):
            FaultPlan.from_json("{not json")

    def test_non_object_payloads_rejected(self):
        with pytest.raises(FaultPlanError):
            FaultPlan.from_dict([1, 2])
        with pytest.raises(FaultPlanError):
            FaultRule.from_dict("network.wire")

    def test_load_from_file(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text(
            '{"name": "test", "rules": '
            '[{"site": "network.wire", "kind": "nth", "occurrences": [3]}]}'
        )
        plan = FaultPlan.load(path)
        assert plan.name == "test"
        assert plan.rules[0].occurrences == (3,)

    def test_load_missing_file_raises_oserror(self, tmp_path):
        with pytest.raises(OSError):
            FaultPlan.load(tmp_path / "absent.json")


class TestFaultPlan:
    def test_empty_plan_is_disabled(self):
        assert not FaultPlan().enabled
        assert FaultPlan().sites() == ()

    def test_rules_for_preserves_plan_indices(self):
        plan = FaultPlan(
            rules=(
                FaultRule(site="network.wire", probability=0.1),
                FaultRule(site="pcie.tlp", probability=0.1),
                FaultRule(site="network.wire", action="corrupt", probability=0.1),
            )
        )
        assert [index for index, _ in plan.rules_for("network.wire")] == [0, 2]
        assert plan.sites() == ("network.wire", "pcie.tlp")

    def test_rules_must_be_fault_rules(self):
        with pytest.raises(FaultPlanError, match="FaultRule"):
            FaultPlan(rules=({"site": "network.wire"},))

    def test_plan_is_hashable_for_config_embedding(self):
        plan = lossy_network_plan()
        assert hash(plan) == hash(lossy_network_plan())

    def test_registry_constants_consistent(self):
        assert set(KINDS) == {"probabilistic", "nth", "window"}
        assert set(ACTIONS) == {"drop", "corrupt"}
        assert all(description for description in SITES.values())
