"""Smoke tests: every example script must run clean.

Examples are documentation that executes; a broken example is a broken
promise.  Each runs in a subprocess exactly as a user would run it.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"

FAST_EXAMPLES = [
    "quickstart.py",
    "whatif_analysis.py",
    "integrated_nic.py",
    "message_size_sweep.py",
    "halo_exchange.py",
    "rdma_read.py",
    "custom_system.py",
    "ring_allreduce.py",
    "trace_am_lat.py",
]


def run_example(name: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True,
        text=True,
        timeout=300,
    )


@pytest.mark.parametrize("name", FAST_EXAMPLES)
def test_example_runs_clean(name):
    result = run_example(name)
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip(), "example produced no output"


class TestExampleContent:
    def test_quickstart_reports_models_and_observations(self):
        out = run_example("quickstart.py").stdout
        assert "1387.02" in out
        assert "Simulated observations" in out

    def test_whatif_model_matches_resimulation(self):
        out = run_example("whatif_analysis.py").stdout
        assert "model-vs-simulation gap" in out
        # The gap line ends with the ns figure; it must be small.
        gap_line = next(l for l in out.splitlines() if "gap" in l)
        gap = float(gap_line.split()[-2])
        assert gap < 30.0

    def test_halo_exchange_linear_claim(self):
        out = run_example("halo_exchange.py").stdout
        assert "linear-speedup claim holds" in out

    def test_rdma_read_target_idle(self):
        out = run_example("rdma_read.py").stdout
        assert "target CPU busy time: 0.00 ns" in out

    def test_custom_system_flips_the_insights(self):
        out = run_example("custom_system.py").stdout
        # On a network-dominated system the on-node insights must fail.
        assert "Insight 2 [DOES NOT HOLD]" in out
        # And the ranked what-if must put a network component first.
        ranked_start = out.index("best first:")
        first = out[ranked_start:].splitlines()[1]
        assert "Wire" in first or "Switch" in first
