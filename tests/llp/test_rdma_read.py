"""Tests for the RDMA-read (get) extension path."""

import pytest

from repro.core.components import ComponentTimes
from repro.core.models import RdmaReadLatencyModel
from repro.llp.uct import UCS_ERR_NO_RESOURCE, UCS_OK, UctWorker
from repro.node import SystemConfig, Testbed

PCIE = 137.49
NETWORK = 382.81
MEM_READ = 90.0
RC_TO_MEM_8B = 240.96


def make_pair():
    tb = Testbed(SystemConfig.paper_testbed(deterministic=True))
    w1 = UctWorker(tb.node1)
    i1 = w1.create_iface()
    w2 = UctWorker(tb.node2)
    i2 = w2.create_iface()
    return tb, w1, i1, i1.create_ep(i2)


def run_get(tb, ep, payload=8):
    def body():
        status = yield from ep.get_bcopy(payload)
        return status

    status = tb.env.run(until=tb.env.process(body()))
    tb.run()
    return status


class TestGetPath:
    def test_stage_journal(self):
        tb, _w1, i1, ep = make_pair()
        assert run_get(tb, ep) == UCS_OK
        message = i1.last_message
        ts = message.timestamps
        # Request out: PIO write → NIC → network.
        assert ts["nic_arrival"] == pytest.approx(ts["pio_written"] + PCIE)
        assert ts["target_nic"] == pytest.approx(ts["nic_arrival"] + NETWORK)
        # Target serves the read: one PCIe round trip + memory read,
        # with no target-CPU involvement.
        assert ts["read_served"] == pytest.approx(
            ts["target_nic"] + 2 * PCIE + MEM_READ
        )
        # Response back + landing through the initiator RC.
        assert ts["response_rx"] == pytest.approx(ts["read_served"] + NETWORK)
        assert ts["payload_visible"] == pytest.approx(
            ts["response_rx"] + PCIE + RC_TO_MEM_8B
        )

    def test_target_cpu_never_runs(self):
        tb, _w1, _i1, ep = make_pair()
        run_get(tb, ep)
        assert tb.node2.cpu.busy_ns == 0.0

    def test_payload_lands_locally(self):
        tb, _w1, i1, ep = make_pair()
        run_get(tb, ep)
        message = i1.last_message
        assert len(tb.node1.memory.mailbox(message.recv_target)) == 1

    def test_completion_generated(self):
        tb, _w1, i1, ep = make_pair()
        run_get(tb, ep)
        cqe = i1.qp.cq.try_poll()
        assert cqe is not None
        assert cqe.message is i1.last_message

    def test_custom_local_buffer(self):
        tb, _w1, _i1, ep = make_pair()

        def body():
            yield from ep.get_bcopy(8, local_buffer="my_region")

        tb.env.run(until=tb.env.process(body()))
        tb.run()
        assert len(tb.node1.memory.mailbox("my_region")) == 1

    def test_busy_post_on_full_txq(self):
        tb, _w1, i1, ep = make_pair()
        depth = tb.config.nic.txq_depth

        def body():
            for _ in range(depth):
                yield from ep.get_bcopy(8)
            status = yield from ep.get_bcopy(8)
            return status

        assert tb.env.run(until=tb.env.process(body())) == UCS_ERR_NO_RESOURCE


class TestModelAgreement:
    def test_simulated_get_matches_model(self):
        """Model vs simulation, accounting for the known structural
        offsets (the model charges the full LLP_post though the trailing
        misc overlaps the flight, and adds the final poll)."""
        tb, _w1, i1, ep = make_pair()
        run_get(tb, ep)
        message = i1.last_message
        simulated = message.interval("posted", "payload_visible")
        model = RdmaReadLatencyModel(ComponentTimes.paper())
        # simulated + overlapped misc (14.99) + final LLP_prog (61.63)
        # equals the model's full path.
        assert simulated + 14.99 + 61.63 == pytest.approx(model.predicted_ns)

    def test_model_components_sum(self):
        model = RdmaReadLatencyModel(ComponentTimes.paper())
        assert sum(model.components().values()) == pytest.approx(model.predicted_ns)

    def test_read_slower_than_write(self):
        """A read pays an extra network traversal plus the target PCIe
        round trip compared to a write of the same size."""
        from repro.core.models import LatencyModelLlp

        times = ComponentTimes.paper()
        write = LatencyModelLlp(times).predicted_ns
        read = RdmaReadLatencyModel(times).predicted_ns
        assert read - write == pytest.approx(times.network + 2 * times.pcie + times.mem_read)

    def test_payload_scaling(self):
        times = ComponentTimes.paper()
        small = RdmaReadLatencyModel(times, payload_bytes=8).predicted_ns
        large = RdmaReadLatencyModel(times, payload_bytes=64).predicted_ns
        assert large > small
