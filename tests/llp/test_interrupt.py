"""Tests for the interrupt-driven completion path (§2's alternative)."""

import pytest

from repro.bench import run_am_lat
from repro.llp.uct import UctWorker
from repro.node import SystemConfig, Testbed

DET = SystemConfig.paper_testbed(deterministic=True)


class TestWaitAmInterrupt:
    def test_sleeping_thread_burns_no_cpu(self):
        tb = Testbed(DET)
        w1 = UctWorker(tb.node1)
        i1 = w1.create_iface()
        w2 = UctWorker(tb.node2)
        i2 = w2.create_iface()
        ep = i1.create_ep(i2)

        def sender():
            yield from ep.am_short(8)

        def receiver():
            yield from w2.wait_am_interrupt(i2)
            return tb.env.now

        tb.env.process(sender())
        wake_time = tb.env.run(until=tb.env.process(receiver()))
        # Receiver CPU time = interrupt wakeup + one dequeue only; it
        # did not spin while the message was in flight.
        assert tb.node2.cpu.busy_ns == pytest.approx(1800.0 + 61.63)
        assert wake_time > 1800.0

    def test_handler_invoked_from_interrupt_path(self):
        tb = Testbed(DET)
        w1 = UctWorker(tb.node1)
        i1 = w1.create_iface()
        w2 = UctWorker(tb.node2)
        i2 = w2.create_iface()
        received = []
        i2.set_am_handler(lambda m: received.append(m.payload_bytes))
        ep = i1.create_ep(i2)

        def sender():
            yield from ep.am_short(8)

        def receiver():
            message = yield from w2.wait_am_interrupt(i2)
            return message

        tb.env.process(sender())
        message = tb.env.run(until=tb.env.process(receiver()))
        assert received == [8]
        assert message.payload_bytes == 8
        assert i2.messages_delivered == 1


class TestAmLatInterruptMode:
    def test_interrupt_mode_adds_wakeup_per_one_way(self):
        polling = run_am_lat(config=DET, iterations=60, warmup=15)
        interrupt = run_am_lat(
            config=DET, iterations=60, warmup=15, completion_mode="interrupt"
        )
        penalty = interrupt.observed_latency_ns - polling.observed_latency_ns
        assert penalty == pytest.approx(1800.0, rel=0.06)

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError, match="completion_mode"):
            run_am_lat(config=DET, iterations=5, completion_mode="smoke-signals")
