"""Tests for the RDMA atomic (fetch-and-add) extension path."""

import pytest

from repro.llp.uct import UCS_OK, UctWorker
from repro.node import SystemConfig, Testbed
from repro.pcie.link import Direction

PCIE = 137.49
NETWORK = 382.81
MEM_READ = 90.0


def run_atomic():
    tb = Testbed(SystemConfig.paper_testbed(deterministic=True))
    w1 = UctWorker(tb.node1)
    i1 = w1.create_iface()
    i2 = UctWorker(tb.node2).create_iface()
    ep = i1.create_ep(i2)

    def body():
        status = yield from ep.atomic_fadd(8)
        return status

    status = tb.env.run(until=tb.env.process(body()))
    tb.run()
    return tb, i1, status


class TestAtomicFadd:
    def test_completes_with_old_value_locally(self):
        tb, iface, status = run_atomic()
        assert status == UCS_OK
        message = iface.last_message
        assert len(tb.node1.memory.mailbox(message.recv_target)) == 1
        assert iface.qp.cq.available == 1

    def test_target_cpu_never_runs(self):
        tb, _iface, _status = run_atomic()
        assert tb.node2.cpu.busy_ns == 0.0

    def test_target_side_read_modify_write(self):
        """The serving NIC must issue one DMA read and one DMA write
        against its host memory."""
        tb, _iface, _status = run_atomic()
        # Target RC executed exactly one DMA read (the operand fetch)...
        assert tb.node2.rc.dma_reads == 1
        # ...and one DMA write (the modified value going back).
        assert tb.node2.rc.dma_writes == 1

    def test_stage_timing_matches_read_path(self):
        """Fetch-add shares the read path's timing: the write-back is
        posted (off the critical path of the response)."""
        tb, iface, _status = run_atomic()
        ts = iface.last_message.timestamps
        assert ts["atomic_read"] == pytest.approx(
            ts["target_nic"] + 2 * PCIE + MEM_READ
        )
        assert ts["response_rx"] == pytest.approx(ts["atomic_read"] + NETWORK)

    def test_atomic_write_back_tlp_on_target_link(self):
        tb, _iface, _status = run_atomic()
        # Not observable on node 1's analyzer (it taps the initiator),
        # but the target RC stats above prove it; also check the purpose
        # made it through the target link's delivered set.
        assert tb.node2.link.tlps_delivered[Direction.UPSTREAM] >= 2

    def test_busy_post_path(self):
        tb = Testbed(SystemConfig.paper_testbed(deterministic=True))
        w1 = UctWorker(tb.node1)
        i1 = w1.create_iface()
        i2 = UctWorker(tb.node2).create_iface()
        ep = i1.create_ep(i2)
        depth = tb.config.nic.txq_depth

        def body():
            for _ in range(depth):
                yield from ep.atomic_fadd(8)
            status = yield from ep.atomic_fadd(8)
            return status

        from repro.llp.uct import UCS_ERR_NO_RESOURCE

        assert tb.env.run(until=tb.env.process(body())) == UCS_ERR_NO_RESOURCE
