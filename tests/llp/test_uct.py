"""Integration tests for the UCT transport (repro.llp.uct)."""

import pytest

from repro.llp.uct import UCS_ERR_NO_RESOURCE, UCS_OK, UctWorker, invoke_callback
from repro.node import SystemConfig, Testbed
from repro.sim import SimulationError

LLP_POST = 175.42
PCIE = 137.49
NETWORK = 382.81


def make_pair(signal_period=1, **config_overrides):
    config = SystemConfig.paper_testbed(deterministic=True)
    if config_overrides:
        config = config.evolve(**config_overrides)
    tb = Testbed(config)
    w1 = UctWorker(tb.node1)
    i1 = w1.create_iface(signal_period=signal_period)
    w2 = UctWorker(tb.node2)
    i2 = w2.create_iface(signal_period=signal_period)
    return tb, w1, i1, i2, i1.create_ep(i2)


class TestPutShort:
    def test_successful_post_takes_llp_post_time(self):
        tb, _w1, _i1, _i2, ep = make_pair()

        def body():
            status = yield from ep.put_short(8)
            return status, tb.env.now

        status, elapsed = tb.env.run(until=tb.env.process(body()))
        assert status == UCS_OK
        # md_setup + barriers + pio copy + misc = 175.42 (Table 1).
        assert elapsed == pytest.approx(LLP_POST)

    def test_post_stamps_journal_and_occupies_slot(self):
        tb, _w1, i1, _i2, ep = make_pair()

        def body():
            yield from ep.put_short(8)

        tb.env.run(until=tb.env.process(body()))
        assert i1.qp.txq.occupied == 1
        message = i1.last_message
        assert message is not None
        assert "posted" in message.timestamps
        assert "pio_written" in message.timestamps

    def test_pio_tlp_reaches_nic_one_pcie_after_copy(self):
        tb, _w1, i1, _i2, ep = make_pair()

        def body():
            yield from ep.put_short(8)

        proc = tb.env.process(body())
        tb.env.run(until=proc)
        tb.run()
        message = i1.last_message
        assert message.timestamps["nic_arrival"] == pytest.approx(
            message.timestamps["pio_written"] + PCIE
        )

    def test_oversized_short_post_rejected(self):
        tb, _w1, _i1, _i2, ep = make_pair()

        def body():
            yield from ep.put_short(65)

        with pytest.raises(SimulationError, match="inline limit"):
            tb.env.run(until=tb.env.process(body()))

    def test_busy_post_on_full_txq(self):
        tb, _w1, i1, _i2, ep = make_pair()
        depth = tb.config.nic.txq_depth

        def body():
            for _ in range(depth):
                status = yield from ep.put_short(8)
                assert status == UCS_OK
            t0 = tb.env.now
            status = yield from ep.put_short(8)
            return status, tb.env.now - t0

        status, busy_time = tb.env.run(until=tb.env.process(body()))
        assert status == UCS_ERR_NO_RESOURCE
        assert busy_time == pytest.approx(8.99)
        assert i1.busy_posts == 1
        assert i1.successful_posts == depth


class TestProgress:
    def test_empty_progress_is_cheap(self):
        tb, w1, _i1, _i2, _ep = make_pair()

        def body():
            events = yield from w1.progress()
            return events, tb.env.now

        events, elapsed = tb.env.run(until=tb.env.process(body()))
        assert events == 0
        assert elapsed == pytest.approx(15.0)  # llp_prog_empty
        assert w1.empty_progress_calls == 1

    def test_successful_progress_consumes_cqe_and_frees_slot(self):
        tb, w1, i1, _i2, ep = make_pair()

        def body():
            yield from ep.put_short(8)
            # Wait out the completion generation, then poll.
            yield tb.env.timeout(5000.0)
            t0 = tb.env.now
            events = yield from w1.progress()
            return events, tb.env.now - t0

        events, elapsed = tb.env.run(until=tb.env.process(body()))
        assert events == 1
        assert elapsed == pytest.approx(61.63)  # llp_prog
        assert i1.qp.txq.occupied == 0

    def test_completion_callback_invoked(self):
        tb, w1, i1, _i2, ep = make_pair()
        seen = []
        i1.add_completion_callback(lambda cqe: seen.append(cqe.completes))

        def body():
            yield from ep.put_short(8)
            yield tb.env.timeout(5000.0)
            yield from w1.progress()

        tb.env.run(until=tb.env.process(body()))
        assert seen == [1]

    def test_am_delivery_runs_handler(self):
        tb, _w1, _i1, i2, ep = make_pair()
        w2 = i2.worker
        received = []
        i2.set_am_handler(lambda m: received.append(m.payload_bytes))

        def sender():
            yield from ep.am_short(8)

        def receiver():
            yield from w2.progress_until(lambda: received)

        tb.env.process(sender())
        tb.env.run(until=tb.env.process(receiver()))
        assert received == [8]
        assert i2.messages_delivered == 1

    def test_progress_until_spins(self):
        tb, w1, _i1, _i2, _ep = make_pair()
        flag = {"done": False}

        def flipper():
            yield tb.env.timeout(100.0)
            flag["done"] = True

        def body():
            yield from w1.progress_until(lambda: flag["done"])
            return tb.env.now

        tb.env.process(flipper())
        elapsed = tb.env.run(until=tb.env.process(body()))
        # Spins in llp_prog_empty steps until the flag flips.
        assert elapsed >= 100.0
        assert elapsed < 130.0


class TestZcopy:
    def test_large_message_goes_via_doorbell(self):
        tb, _w1, i1, _i2, ep = make_pair()

        def body():
            status = yield from ep.put_zcopy(4096)
            return status

        assert tb.env.run(until=tb.env.process(body())) == UCS_OK
        tb.run()
        message = i1.last_message
        assert not message.pio
        assert not message.inline
        assert "md_fetched" in message.timestamps
        assert "payload_fetched" in message.timestamps

    def test_zcopy_busy_post(self):
        tb, _w1, i1, _i2, ep = make_pair()
        depth = tb.config.nic.txq_depth

        def body():
            for _ in range(depth):
                yield from ep.put_short(8)
            status = yield from ep.put_zcopy(4096)
            return status

        assert tb.env.run(until=tb.env.process(body())) == UCS_ERR_NO_RESOURCE


class TestInvokeCallback:
    def test_plain_function(self):
        tb, _w1, _i1, _i2, _ep = make_pair()
        seen = []

        def body():
            result = yield from invoke_callback(lambda x: seen.append(x) or "r", 42)
            return result

        tb.env.run(until=tb.env.process(body()))
        assert seen == [42]

    def test_generator_function_burns_time(self):
        tb, _w1, _i1, _i2, _ep = make_pair()

        def callback(value):
            yield tb.env.timeout(50.0)
            return value * 2

        def body():
            result = yield from invoke_callback(callback, 21)
            return result, tb.env.now

        result, elapsed = tb.env.run(until=tb.env.process(body()))
        assert result == 42
        assert elapsed == 50.0
