"""Unit tests for the UCS-style profiler (repro.llp.profiling)."""

import numpy as np
import pytest

from repro.cpu.timer import VirtualTimer
from repro.llp.profiling import RegionStats, UcsProfiler
from repro.sim import Environment


def make_profiler(overhead=49.69, std=0.0, enabled=True):
    env = Environment()
    timer = VirtualTimer(
        env, np.random.default_rng(0), measurement_overhead_ns=overhead,
        overhead_std_ns=std,
    )
    return env, UcsProfiler(timer, enabled=enabled)


def measure_region(env, profiler, region, true_duration, repeats=1):
    def body():
        for _ in range(repeats):
            start = yield from profiler.begin(region)
            yield env.timeout(true_duration)
            yield from profiler.end(region, start)

    env.run(until=env.process(body()))


class TestMeasurement:
    def test_raw_mean_includes_full_overhead(self):
        """A wrapped region must read high by the infrastructure
        overhead, exactly like the paper's UCS measurements."""
        env, profiler = make_profiler()
        measure_region(env, profiler, "r", 100.0)
        assert profiler.raw_mean("r") == pytest.approx(100.0 + 49.69)

    def test_corrected_mean_recovers_true_duration(self):
        env, profiler = make_profiler()
        measure_region(env, profiler, "r", 100.0, repeats=5)
        assert profiler.corrected_mean("r") == pytest.approx(100.0)

    def test_corrected_mean_clamped_at_zero(self):
        # With noisy read costs a short region can measure below the
        # nominal overhead; the correction must clamp, not go negative.
        _env, profiler = make_profiler(overhead=100.0)
        profiler._regions.setdefault("tiny", RegionStats()).samples.append(80.0)
        assert profiler.corrected_mean("tiny") == 0.0

    def test_measuring_costs_simulated_time(self):
        env, profiler = make_profiler()
        measure_region(env, profiler, "r", 100.0)
        assert env.now == pytest.approx(149.69)

    def test_unmeasured_region_reports_zero(self):
        _env, profiler = make_profiler()
        assert profiler.raw_mean("never") == 0.0
        assert profiler.corrected_mean("never") == 0.0
        assert profiler.stats("never").count == 0

    def test_sample_counting_and_reset(self):
        env, profiler = make_profiler()
        measure_region(env, profiler, "r", 10.0, repeats=3)
        assert profiler.stats("r").count == 3
        assert profiler.regions() == ["r"]
        profiler.reset()
        assert profiler.regions() == []


class TestMethodologyControls:
    def test_disabled_profiler_costs_nothing(self):
        env, profiler = make_profiler(enabled=False)
        measure_region(env, profiler, "r", 100.0)
        assert env.now == pytest.approx(100.0)
        assert profiler.stats("r").count == 0

    def test_enable_only_filters_regions(self):
        env, profiler = make_profiler()
        profiler.enable_only({"wanted"})
        measure_region(env, profiler, "unwanted", 50.0)
        measure_region(env, profiler, "wanted", 50.0)
        assert profiler.stats("unwanted").count == 0
        assert profiler.stats("wanted").count == 1

    def test_enable_only_none_measures_everything(self):
        env, profiler = make_profiler()
        profiler.enable_only({"x"})
        profiler.enable_only(None)
        measure_region(env, profiler, "anything", 10.0)
        assert profiler.stats("anything").count == 1

    def test_is_active(self):
        _env, profiler = make_profiler()
        profiler.enable_only({"a"})
        assert profiler.is_active("a")
        assert not profiler.is_active("b")

    def test_disabled_region_begin_returns_none(self):
        env, profiler = make_profiler()
        profiler.enable_only(set())

        def body():
            start = yield from profiler.begin("r")
            assert start is None
            result = yield from profiler.end("r", start)
            assert result is None

        env.run(until=env.process(body()))


class TestWrap:
    def test_wrap_propagates_inner_return(self):
        env, profiler = make_profiler()

        def inner():
            yield env.timeout(10.0)
            return "value"

        def body():
            result = yield from profiler.wrap("r", inner())
            return result

        assert env.run(until=env.process(body())) == "value"
        assert profiler.corrected_mean("r") == pytest.approx(10.0)


class TestRegionStats:
    def test_empty_stats(self):
        stats = RegionStats()
        assert stats.mean == 0.0
        assert stats.std == 0.0

    def test_std_of_constant_samples_is_zero(self):
        stats = RegionStats(samples=[5.0, 5.0, 5.0])
        assert stats.std == 0.0

    def test_std_sample_variance(self):
        stats = RegionStats(samples=[1.0, 3.0])
        assert stats.std == pytest.approx(np.std([1.0, 3.0], ddof=1))
