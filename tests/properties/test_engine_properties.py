"""Property-based tests for the simulation kernel (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Environment, Store


delays = st.lists(
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False), min_size=1, max_size=40
)


class TestClockMonotonicity:
    @given(delays)
    @settings(max_examples=60)
    def test_events_fire_in_nondecreasing_time_order(self, ds):
        env = Environment()
        fired = []

        def proc(delay):
            yield env.timeout(delay)
            fired.append(env.now)

        for delay in ds:
            env.process(proc(delay))
        env.run()
        assert fired == sorted(fired)
        assert len(fired) == len(ds)

    @given(delays)
    @settings(max_examples=60)
    def test_final_clock_is_max_delay(self, ds):
        env = Environment()
        for delay in ds:
            env.timeout(delay)
        env.run()
        assert env.now == max(ds)

    @given(delays, delays)
    @settings(max_examples=40)
    def test_sequential_process_time_is_sum(self, first, second):
        env = Environment()

        def body():
            for delay in first + second:
                yield env.timeout(delay)

        env.run(until=env.process(body()))
        assert env.now == sum(first + second)


class TestDeterminism:
    @given(st.lists(st.floats(min_value=0.0, max_value=1e3, allow_nan=False),
                    min_size=1, max_size=20))
    @settings(max_examples=40)
    def test_identical_workloads_identical_traces(self, ds):
        def run():
            env = Environment()
            log = []

            def proc(tag, delay):
                yield env.timeout(delay)
                log.append((tag, env.now))

            for index, delay in enumerate(ds):
                env.process(proc(index, delay))
            env.run()
            return log

        assert run() == run()


class TestStoreProperties:
    @given(st.lists(st.integers(), min_size=1, max_size=50))
    @settings(max_examples=60)
    def test_store_is_fifo(self, items):
        env = Environment()
        store = Store(env)
        received = []

        def producer():
            for item in items:
                yield store.put(item)

        def consumer():
            for _ in items:
                received.append((yield store.get()))

        env.process(producer())
        env.process(consumer())
        env.run()
        assert received == items

    @given(
        st.lists(st.integers(), min_size=1, max_size=30),
        st.integers(min_value=1, max_value=5),
    )
    @settings(max_examples=40)
    def test_bounded_store_never_exceeds_capacity(self, items, capacity):
        env = Environment()
        store = Store(env, capacity=capacity)
        peak = {"value": 0}

        def producer():
            for item in items:
                yield store.put(item)
                peak["value"] = max(peak["value"], len(store))

        def consumer():
            for _ in items:
                yield env.timeout(1.0)
                yield store.get()

        env.process(producer())
        env.process(consumer())
        env.run()
        assert peak["value"] <= capacity

    @given(st.lists(st.integers(), max_size=30), st.integers(min_value=1, max_value=8))
    @settings(max_examples=40)
    def test_conservation_nothing_lost_or_duplicated(self, items, consumers):
        env = Environment()
        store = Store(env)
        received = []

        def producer():
            for item in items:
                yield store.put(item)

        def consumer(budget):
            for _ in range(budget):
                received.append((yield store.get()))

        base = len(items) // consumers
        remainder = len(items) - base * consumers
        env.process(producer())
        for index in range(consumers):
            env.process(consumer(base + (1 if index < remainder else 0)))
        env.run()
        assert sorted(received) == sorted(items)
