"""Property-based tests for the analytical models and breakdowns."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.breakdown import (
    fig4_llp_post,
    fig12_overall_injection,
    fig13_end_to_end,
    fig15_categories,
    fig16_on_node,
)
from repro.core.components import ComponentTimes
from repro.core.models import (
    EndToEndLatencyModel,
    InjectionModelLlp,
    LatencyModelLlp,
    OverallInjectionModel,
    gen_completion,
)
from repro.core.whatif import Metric, WhatIfAnalysis


def times_strategy():
    """Random but physically sensible component-time sets."""
    positive = st.floats(min_value=0.1, max_value=5000.0, allow_nan=False)
    return st.builds(
        ComponentTimes,
        md_setup=positive,
        barrier_md=positive,
        barrier_dbc=positive,
        pio_copy=positive,
        llp_post_other=positive,
        llp_prog=positive,
        busy_post=positive,
        measurement_update=positive,
        pcie=positive,
        rc_to_mem_8b=positive,
        rc_to_mem_64b=positive,
        wire=positive,
        switch=positive,
        mpich_isend=positive,
        ucp_isend=positive,
        mpich_recv_callback=positive,
        ucp_recv_callback=positive,
        mpich_after_progress=positive,
        post_prog=positive,
        llp_tx_prog=st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
        misc_injection=st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
    )


class TestModelInvariants:
    @given(times_strategy())
    @settings(max_examples=80)
    def test_predictions_positive_and_finite(self, times):
        for model in (
            InjectionModelLlp(times),
            LatencyModelLlp(times),
            OverallInjectionModel(times),
            EndToEndLatencyModel(times),
        ):
            assert model.predicted_ns > 0
            assert math.isfinite(model.predicted_ns)

    @given(times_strategy())
    @settings(max_examples=80)
    def test_components_always_sum_to_prediction(self, times):
        for model in (
            InjectionModelLlp(times),
            LatencyModelLlp(times),
            OverallInjectionModel(times),
            EndToEndLatencyModel(times),
        ):
            total = sum(model.components().values())
            assert math.isclose(total, model.predicted_ns, rel_tol=1e-9)

    @given(times_strategy())
    @settings(max_examples=80)
    def test_e2e_always_exceeds_llp_latency(self, times):
        assert (
            EndToEndLatencyModel(times).predicted_ns
            >= LatencyModelLlp(times).predicted_ns
        )

    @given(times_strategy())
    @settings(max_examples=80)
    def test_gen_completion_exceeds_one_way_hardware(self, times):
        assert gen_completion(times) > times.pcie + times.network


class TestBreakdownInvariants:
    @given(times_strategy())
    @settings(max_examples=80)
    def test_percentages_sum_to_100(self, times):
        for breakdown in (
            fig4_llp_post(times),
            fig12_overall_injection(times),
            fig13_end_to_end(times),
        ):
            assert math.isclose(
                sum(breakdown.percentages().values()), 100.0, rel_tol=1e-9
            )

    @given(times_strategy())
    @settings(max_examples=80)
    def test_fig15_categories_partition_the_latency(self, times):
        top = fig15_categories(times)["top"]
        e2e = EndToEndLatencyModel(times).predicted_ns
        assert math.isclose(top.total_ns, e2e, rel_tol=1e-9)

    @given(times_strategy())
    @settings(max_examples=80)
    def test_fig16_on_node_is_latency_minus_network(self, times):
        on_node = fig16_on_node(times)["top"].total_ns
        e2e = EndToEndLatencyModel(times).predicted_ns
        assert math.isclose(on_node, e2e - times.network, rel_tol=1e-9)


class TestWhatIfInvariants:
    @given(
        times_strategy(),
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    )
    @settings(max_examples=80)
    def test_speedup_monotone_in_reduction(self, times, r1, r2):
        analysis = WhatIfAnalysis(times)
        component = times.pio_copy
        low, high = sorted((r1, r2))
        assert analysis.speedup(Metric.LATENCY, component, low) <= analysis.speedup(
            Metric.LATENCY, component, high
        )

    @given(times_strategy(), st.floats(min_value=0.0, max_value=1.0, allow_nan=False))
    @settings(max_examples=80)
    def test_speedup_bounded_by_component_share(self, times, reduction):
        analysis = WhatIfAnalysis(times)
        total = analysis.total(Metric.LATENCY)
        component = times.switch
        speedup = analysis.speedup(Metric.LATENCY, component, reduction)
        assert 0.0 <= speedup <= component / total + 1e-12

    @given(times_strategy(), st.floats(min_value=0.0, max_value=0.99, allow_nan=False))
    @settings(max_examples=80)
    def test_multiplicative_at_least_fractional(self, times, reduction):
        analysis = WhatIfAnalysis(times)
        component = times.wire
        fractional = analysis.speedup(Metric.LATENCY, component, reduction)
        multiplicative = analysis.multiplicative_speedup(
            Metric.LATENCY, component, reduction
        )
        assert multiplicative >= fractional - 1e-12

    @given(times_strategy())
    @settings(max_examples=80)
    def test_panel_lines_within_metric_bounds(self, times):
        analysis = WhatIfAnalysis(times)
        for panel in (analysis.figure17a(), analysis.figure17b(),
                      analysis.figure17c(), analysis.figure17d()):
            for points in panel.values():
                for _reduction, speedup in points:
                    assert 0.0 <= speedup <= 1.0
