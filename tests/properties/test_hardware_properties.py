"""Property-based tests for the hardware substrate invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nic.completion import CompletionModeration
from repro.nic.descriptor import Message, MessageOp
from repro.node import SystemConfig, Testbed
from repro.pcie.config import PcieConfig
from repro.pcie.link import Direction, PcieLink
from repro.pcie.packets import Tlp, TlpType
from repro.sim import Environment


class TestLinkProperties:
    @given(
        st.lists(st.integers(min_value=0, max_value=4096), min_size=1, max_size=25),
        st.integers(min_value=1, max_value=64),
    )
    @settings(max_examples=40, deadline=None)
    def test_tlps_always_delivered_in_order_despite_credit_limits(
        self, payloads, header_credits
    ):
        env = Environment()
        link = PcieLink(
            env,
            PcieConfig(
                posted_header_credits=header_credits,
                posted_data_credits=max(256, max(payloads) // 16 + 1),
                update_fc_interval_ns=50.0,
            ),
        )
        received = []
        link.set_receiver(Direction.DOWNSTREAM, lambda t: received.append(t.tag))
        for index, payload in enumerate(payloads):
            link.send(
                Direction.DOWNSTREAM,
                Tlp(kind=TlpType.MWR, payload_bytes=payload, tag=index),
            )
        env.run()
        assert received == list(range(len(payloads)))

    @given(st.integers(min_value=1, max_value=30))
    @settings(max_examples=30, deadline=None)
    def test_credits_conserved_after_quiescence(self, n):
        env = Environment()
        link = PcieLink(env, PcieConfig(posted_header_credits=4))
        link.set_receiver(Direction.DOWNSTREAM, lambda t: None)
        for _ in range(n):
            link.send(Direction.DOWNSTREAM, Tlp(kind=TlpType.MWR, payload_bytes=64))
        env.run()
        pool = link.pool(Direction.DOWNSTREAM, "posted")
        assert pool.headers == pool.max_headers
        assert pool.data == pool.max_data


class TestModerationProperties:
    @given(
        st.integers(min_value=1, max_value=100),
        st.integers(min_value=1, max_value=500),
    )
    @settings(max_examples=60)
    def test_signal_count_is_floor_of_posts_over_period(self, period, posts):
        moderation = CompletionModeration(signal_period=period)
        signals = sum(moderation.on_post() for _ in range(posts))
        assert signals == posts // period

    @given(st.integers(min_value=1, max_value=64))
    @settings(max_examples=30)
    def test_pending_never_reaches_period(self, period):
        moderation = CompletionModeration(signal_period=period)
        for _ in range(period * 3):
            moderation.on_post()
            assert moderation.pending_unsignaled < period


class TestEndToEndConservation:
    @given(st.integers(min_value=1, max_value=12), st.integers(min_value=1, max_value=4))
    @settings(max_examples=20, deadline=None)
    def test_every_posted_message_is_delivered_and_acked(self, n_messages, period):
        tb = Testbed(SystemConfig.paper_testbed(deterministic=True))
        qp = tb.node1.nic.create_qp(signal_period=period)
        messages = []
        for _ in range(n_messages):
            message = Message(op=MessageOp.AM, payload_bytes=8, recv_target="rx", qp=qp)
            qp.register_post(message)
            tb.node1.rc.mmio_write(
                Tlp(kind=TlpType.MWR, payload_bytes=64, purpose="pio_post",
                    message=message)
            )
            messages.append(message)
        tb.run()
        # Conservation: everything transmitted, received, and ACKed.
        assert tb.node1.nic.messages_transmitted == n_messages
        assert tb.node2.nic.messages_received == n_messages
        assert len(tb.node2.memory.mailbox("rx")) == n_messages
        assert all("ack_rx" in m.timestamps for m in messages)
        # Moderation: exactly floor(n/period) CQEs.
        assert qp.cqes_written == n_messages // period

    @given(st.integers(min_value=2, max_value=10))
    @settings(max_examples=15, deadline=None)
    def test_journal_stages_monotone(self, n_messages):
        tb = Testbed(SystemConfig.paper_testbed())  # noisy on purpose
        qp = tb.node1.nic.create_qp()
        messages = []

        def poster():
            for _ in range(n_messages):
                message = Message(
                    op=MessageOp.AM, payload_bytes=8, recv_target="rx", qp=qp
                )
                qp.register_post(message)
                message.stamp("posted", tb.env.now)
                tb.node1.rc.mmio_write(
                    Tlp(kind=TlpType.MWR, payload_bytes=64, purpose="pio_post",
                        message=message)
                )
                messages.append(message)
                yield tb.env.timeout(300.0)

        tb.env.process(poster())
        tb.run()
        stage_order = [
            "posted", "nic_arrival", "wire_out", "target_nic",
            "payload_visible",
        ]
        for message in messages:
            stamps = [message.timestamps[s] for s in stage_order]
            assert stamps == sorted(stamps)
