"""Property-based tests for the fault-injection/recovery invariants.

The two contracts the subsystem must hold under *any* plan:

1. while the retry budget suffices, every posted message completes
   exactly once (no loss, no duplicate delivery) and its lifecycle
   timestamps are monotone in virtual time;
2. when the budget cannot suffice, every message surfaces a structured
   error CQE — the run always terminates, it never hangs.
"""

import dataclasses

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import FaultPlan, FaultRule
from repro.llp.uct import UCS_OK, UctWorker
from repro.node import SystemConfig, Testbed

#: Message lifecycle stamps that must appear in this order when present.
_LIFECYCLE = ("posted", "nic_arrival", "wire_out", "target_nic", "payload_visible")


def _drive(plan, n_messages, retry_budget=7, retransmit_timeout_ns=1000.0):
    config = SystemConfig.paper_testbed(deterministic=True)
    config = config.evolve(
        nic=dataclasses.replace(
            config.nic,
            retry_budget=retry_budget,
            retransmit_timeout_ns=retransmit_timeout_ns,
        ),
        faults=plan,
    )
    tb = Testbed(config)
    worker = UctWorker(tb.node1)
    iface = worker.create_iface(signal_period=1)
    remote = UctWorker(tb.node2).create_iface()
    ep = iface.create_ep(remote)
    cqes = []
    iface.add_completion_callback(cqes.append)
    messages = []

    def body():
        for _ in range(n_messages):
            while True:
                status = yield from ep.put_short(8)
                if status == UCS_OK:
                    break
                yield from worker.progress()
            messages.append(iface.last_message)
        yield from worker.progress_until(lambda: len(cqes) >= n_messages)

    tb.env.run(until=tb.env.process(body(), name="driver"))
    tb.run()
    return tb, cqes, messages


_site = st.sampled_from(["network.wire", "network.switch", "nic.tx", "network.ack"])
_action = st.sampled_from(["drop", "corrupt"])


class TestWithinBudget:
    @given(
        site=_site,
        action=_action,
        occurrences=st.lists(
            st.integers(min_value=1, max_value=20),
            min_size=1, max_size=5, unique=True,
        ),
        n_messages=st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=25, deadline=None)
    def test_every_message_completes_exactly_once(
        self, site, action, occurrences, n_messages
    ):
        plan = FaultPlan(
            rules=(
                FaultRule(site=site, kind="nth", action=action,
                          occurrences=tuple(occurrences)),
            )
        )
        # Worst case every injected fault lands on one message's
        # (re)transmissions, so a budget of len(occurrences)+1 always
        # suffices for recovery.
        tb, cqes, messages = _drive(
            plan, n_messages, retry_budget=len(occurrences) + 1
        )
        assert len(cqes) == n_messages
        assert all(cqe.status == "ok" for cqe in cqes)
        # Exactly-once delivery at the target, regardless of retries.
        assert tb.node2.nic.messages_received == n_messages
        # Nothing left in flight; the transport fully settled.
        assert not tb.node1.nic.reliability.outstanding
        # Virtual-time monotonicity across each message's lifecycle.
        for message in messages:
            stamped = [
                message.timestamps[stamp]
                for stamp in _LIFECYCLE
                if stamp in message.timestamps
            ]
            assert stamped == sorted(stamped)

    @given(
        probability=st.floats(min_value=0.05, max_value=0.4),
        n_messages=st.integers(min_value=1, max_value=3),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=15, deadline=None)
    def test_probabilistic_loss_below_certainty_always_recovers(
        self, probability, n_messages, seed
    ):
        plan = FaultPlan(
            rules=(FaultRule(site="network.wire", probability=probability),)
        )
        config = SystemConfig.paper_testbed(deterministic=True, seed=seed)
        config = config.evolve(
            nic=dataclasses.replace(
                config.nic, retry_budget=64, retransmit_timeout_ns=1000.0
            ),
            faults=plan,
        )
        tb = Testbed(config)
        worker = UctWorker(tb.node1)
        iface = worker.create_iface(signal_period=1)
        remote = UctWorker(tb.node2).create_iface()
        ep = iface.create_ep(remote)
        cqes = []
        iface.add_completion_callback(cqes.append)

        def body():
            for _ in range(n_messages):
                while True:
                    status = yield from ep.put_short(8)
                    if status == UCS_OK:
                        break
                    yield from worker.progress()
            yield from worker.progress_until(lambda: len(cqes) >= n_messages)

        tb.env.run(until=tb.env.process(body(), name="driver"))
        tb.run()
        assert all(cqe.status == "ok" for cqe in cqes)
        assert tb.node2.nic.messages_received == n_messages


class TestBudgetExhaustion:
    @given(
        retry_budget=st.integers(min_value=0, max_value=3),
        n_messages=st.integers(min_value=1, max_value=3),
    )
    @settings(max_examples=15, deadline=None)
    def test_certain_loss_surfaces_error_cqes_never_hangs(
        self, retry_budget, n_messages
    ):
        plan = FaultPlan(rules=(FaultRule(site="nic.tx", probability=1.0),))
        tb, cqes, _ = _drive(
            plan, n_messages,
            retry_budget=retry_budget, retransmit_timeout_ns=500.0,
        )
        # The driver returned: the run terminated.  Every message got a
        # CQE, every CQE is a structured error, and nothing dangles.
        assert len(cqes) == n_messages
        assert all(cqe.status == "error" for cqe in cqes)
        assert all(cqe.error for cqe in cqes)
        reliability = tb.node1.nic.reliability
        assert reliability.exhausted == n_messages
        assert not reliability.outstanding
        assert tb.node2.nic.messages_received == 0


class TestPlanProperties:
    @given(
        rules=st.lists(
            st.builds(
                FaultRule,
                site=st.sampled_from(
                    ["network.wire", "network.switch", "network.ack",
                     "nic.tx", "pcie.tlp", "pcie.dllp"]
                ),
                action=_action,
                probability=st.floats(min_value=0.0, max_value=1.0),
            ),
            max_size=5,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_serialization_round_trips(self, rules):
        plan = FaultPlan(rules=tuple(rules))
        assert FaultPlan.from_dict(plan.to_dict()) == plan
