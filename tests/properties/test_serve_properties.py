"""Property-based tests for the serving tier (repro.serve).

The load-bearing properties from the PR's acceptance criteria:

* every in-envelope surrogate answer is within 5% of a fresh
  simulation, across randomly drawn query points;
* out-of-envelope queries *always* fall back to simulation — the
  surrogate never extrapolates;
* multilinear interpolation is a convex combination of its cell's
  corner values (so predictions can never leave the fitted value range)
  and reproduces grid nodes exactly;
* the sampled verifier's decision stream is deterministic and hits its
  configured fraction.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.campaign import CampaignSpec, SweepAxis, run_campaign
from repro.campaign.spec import apply_config_overrides
from repro.campaign.workloads import get_workload
from repro.node import SystemConfig
from repro.serve import SampledVerifier, ServeTier
from repro.serve.surrogate import fit_surrogate, normalized_config_hash

BASE = SystemConfig.paper_testbed(deterministic=True)

#: The fitted region: the DoorBell+DMA latency plateau crossed with the
#: switch hop count — the simulator is multilinear here, which is the
#: regime interpolation is *supposed* to serve.
PAYLOAD_LO, PAYLOAD_HI = 1024, 6144
HOPS_LO, HOPS_HI = 1, 4


@pytest.fixture(scope="module")
def surrogate():
    result = run_campaign(
        CampaignSpec(
            name="prop-fit",
            workload="put_oneway_latency",
            base_config=BASE,
            axes=(
                SweepAxis("payload_bytes", (PAYLOAD_LO, PAYLOAD_HI)),
                SweepAxis("network.switch_count", (HOPS_LO, 2, HOPS_HI)),
            ),
        )
    )
    return fit_surrogate(
        result,
        axes=["payload_bytes", "network.switch_count"],
        base_config=BASE,
    )


class TestInEnvelopeAccuracy:
    @given(
        payload=st.integers(min_value=PAYLOAD_LO, max_value=PAYLOAD_HI),
        hops=st.integers(min_value=HOPS_LO, max_value=HOPS_HI),
    )
    @settings(max_examples=15, deadline=None)
    def test_within_five_percent_of_fresh_simulation(self, surrogate, payload, hops):
        config = apply_config_overrides(BASE, {"network.switch_count": hops})
        truth = get_workload("put_oneway_latency")(config, payload_bytes=payload)
        guess = surrogate.predict(
            {"payload_bytes": payload}, {"network.switch_count": hops}
        )
        error = abs(
            guess["one_way_latency_ns"] - truth["one_way_latency_ns"]
        ) / truth["one_way_latency_ns"]
        assert error <= 0.05

    @given(
        payload=st.integers(min_value=PAYLOAD_LO, max_value=PAYLOAD_HI),
        hops=st.integers(min_value=HOPS_LO, max_value=HOPS_HI),
    )
    @settings(max_examples=50, deadline=None)
    def test_in_envelope_points_are_accepted(self, surrogate, payload, hops):
        assert surrogate.envelope.contains(
            {"payload_bytes": payload},
            {"network.switch_count": hops},
            normalized_config_hash(BASE),
        )


class TestOutOfEnvelopeFallback:
    @given(
        payload=st.one_of(
            st.integers(min_value=8, max_value=PAYLOAD_LO - 1),
            st.integers(min_value=PAYLOAD_HI + 1, max_value=8192),
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_payload_outside_range_is_rejected(self, surrogate, payload):
        assert not surrogate.envelope.contains(
            {"payload_bytes": payload},
            {"network.switch_count": 2},
            normalized_config_hash(BASE),
        )

    @given(
        payload=st.sampled_from((8, 64, 512, 7168, 8192)),
        hops=st.integers(min_value=HOPS_LO, max_value=HOPS_HI),
    )
    @settings(max_examples=8, deadline=None)
    def test_tier_simulates_out_of_envelope_queries(
        self, surrogate, tmp_path_factory, payload, hops
    ):
        tier = ServeTier(
            tmp_path_factory.mktemp("store"),
            base_config=BASE,
            verifier=SampledVerifier(fraction=0.0),
        )
        tier.add_surrogate(surrogate)
        answer = tier.query(
            "put_oneway_latency",
            {"payload_bytes": payload},
            {"network.switch_count": hops},
        )
        # Never a surrogate answer: the envelope excludes the payload.
        assert answer.source == "simulation"
        assert answer.surrogate is None
        truth = get_workload("put_oneway_latency")(
            apply_config_overrides(BASE, {"network.switch_count": hops}),
            payload_bytes=payload,
        )
        assert answer.measurements["one_way_latency_ns"] == pytest.approx(
            truth["one_way_latency_ns"]
        )


class TestInterpolationInvariants:
    @given(
        payload=st.floats(
            min_value=PAYLOAD_LO, max_value=PAYLOAD_HI, allow_nan=False
        ),
        hops=st.floats(min_value=HOPS_LO, max_value=HOPS_HI, allow_nan=False),
    )
    @settings(max_examples=200)
    def test_prediction_is_a_convex_combination(self, surrogate, payload, hops):
        """Multilinear interpolation can never leave the fitted range."""
        tensor = surrogate.values["one_way_latency_ns"]
        guess = surrogate.predict(
            {"payload_bytes": payload}, {"network.switch_count": hops}
        )["one_way_latency_ns"]
        assert min(tensor) - 1e-9 <= guess <= max(tensor) + 1e-9
        assert math.isfinite(guess)

    def test_grid_nodes_reproduce_exactly(self, surrogate):
        for i, payload in enumerate(surrogate.grid[0]):
            for j, hops in enumerate(surrogate.grid[1]):
                flat = i * len(surrogate.grid[1]) + j
                guess = surrogate.predict(
                    {"payload_bytes": payload}, {"network.switch_count": hops}
                )["one_way_latency_ns"]
                assert guess == pytest.approx(
                    surrogate.values["one_way_latency_ns"][flat]
                )


class TestVerifierSamplingProperties:
    @given(fraction=st.sampled_from((0.05, 0.1, 0.2, 0.25, 0.5, 1.0)),
           n=st.integers(min_value=1, max_value=400))
    @settings(max_examples=100)
    def test_fraction_is_respected(self, fraction, n):
        verifier = SampledVerifier(fraction=fraction)
        verified = sum(verifier.should_verify() for _ in range(n))
        stride = round(1.0 / fraction)
        assert verified == math.ceil(n / stride)

    @given(fraction=st.floats(min_value=0.01, max_value=1.0, allow_nan=False),
           n=st.integers(min_value=1, max_value=200))
    @settings(max_examples=100)
    def test_decision_stream_is_deterministic(self, fraction, n):
        a = SampledVerifier(fraction=fraction)
        b = SampledVerifier(fraction=fraction)
        assert [a.should_verify() for _ in range(n)] == [
            b.should_verify() for _ in range(n)
        ]
