"""Property-based tests for Data Link replay (go-back-N) correctness.

For *any* corruption pattern the link must deliver every TLP exactly
once, in order — the §2 guarantee.  Corruption patterns are driven by
hypothesis both as deterministic attempt sets and as random rates.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pcie.config import PcieConfig
from repro.pcie.link import Direction, PcieLink
from repro.pcie.packets import Tlp, TlpType
from repro.sim import Environment


class ScriptedRng:
    """Corrupt exactly the scripted delivery attempts (1-indexed)."""

    def __init__(self, corrupt_attempts):
        self.corrupt_attempts = set(corrupt_attempts)
        self.calls = 0

    def random(self):
        self.calls += 1
        return 0.0 if self.calls in self.corrupt_attempts else 1.0


def run_link(n_tlps, rng, corruption=0.5):
    env = Environment()
    link = PcieLink(
        env, PcieConfig(tlp_corruption_prob=corruption), rng=rng
    )
    received = []
    link.set_receiver(Direction.DOWNSTREAM, lambda t: received.append(t.tag))
    for index in range(n_tlps):
        link.send(
            Direction.DOWNSTREAM, Tlp(kind=TlpType.MWR, payload_bytes=64, tag=index)
        )
    env.run()
    return link, received


class TestScriptedCorruption:
    @given(
        st.integers(min_value=1, max_value=12),
        st.sets(st.integers(min_value=1, max_value=60), max_size=10),
    )
    @settings(max_examples=60, deadline=None)
    def test_exactly_once_in_order_for_any_pattern(self, n_tlps, corrupt):
        link, received = run_link(n_tlps, ScriptedRng(corrupt))
        assert received == list(range(n_tlps))
        assert link._ports[Direction.DOWNSTREAM].replay == {}

    @given(st.integers(min_value=1, max_value=8))
    @settings(max_examples=20, deadline=None)
    def test_corrupt_every_first_attempt(self, n_tlps):
        # Corrupt the first delivery attempt of every TLP.
        rng = ScriptedRng(set(range(1, n_tlps + 1)))
        _link, received = run_link(n_tlps, rng)
        assert received == list(range(n_tlps))


class TestRandomCorruption:
    @given(
        st.integers(min_value=0, max_value=2**31),
        st.floats(min_value=0.0, max_value=0.4, allow_nan=False),
        st.integers(min_value=1, max_value=30),
    )
    @settings(max_examples=40, deadline=None)
    def test_random_rates_never_lose_or_reorder(self, seed, rate, n_tlps):
        link, received = run_link(
            n_tlps, np.random.default_rng(seed), corruption=rate
        )
        assert received == list(range(n_tlps))
        corrupted, retransmissions = link.corruption_stats(Direction.DOWNSTREAM)
        assert retransmissions >= corrupted or corrupted == 0
