"""Pattern generators are pure, deterministic and self-send-free."""

import pytest

from repro.traffic.patterns import (
    PATTERNS,
    all_to_all_pattern,
    incast_pattern,
    make_pattern,
    outcast_pattern,
    permutation_pattern,
    summarize_link_stats,
    uniform_random_pattern,
)


class TestPermutation:
    def test_cyclic_shift(self):
        assert permutation_pattern(4) == [(0, 1), (1, 2), (2, 3), (3, 0)]
        assert permutation_pattern(4, shift=2) == [(0, 2), (1, 3), (2, 0), (3, 1)]

    def test_identity_shift_rejected(self):
        with pytest.raises(ValueError):
            permutation_pattern(4, shift=0)
        with pytest.raises(ValueError):
            permutation_pattern(4, shift=4)


class TestUniformRandom:
    def test_deterministic_for_seed(self):
        assert uniform_random_pattern(8, seed=7) == uniform_random_pattern(8, seed=7)
        assert uniform_random_pattern(8, seed=7) != uniform_random_pattern(8, seed=8)

    def test_no_self_sends_and_full_coverage(self):
        pairs = uniform_random_pattern(16, pairs_per_rank=3)
        assert len(pairs) == 48
        assert all(src != dst for src, dst in pairs)
        assert all(0 <= dst < 16 for _, dst in pairs)
        assert {src for src, _ in pairs} == set(range(16))


class TestHotspots:
    def test_incast_converges_on_sink(self):
        assert incast_pattern(4, sink=2) == [(0, 2), (1, 2), (3, 2)]

    def test_outcast_fans_out(self):
        assert outcast_pattern(4, source=1) == [(1, 0), (1, 2), (1, 3)]

    def test_all_to_all_is_every_ordered_pair(self):
        pairs = all_to_all_pattern(4)
        assert len(pairs) == 12
        assert len(set(pairs)) == 12
        assert all(src != dst for src, dst in pairs)

    @pytest.mark.parametrize("name", sorted(PATTERNS))
    def test_registry_round_trips(self, name):
        pairs = make_pattern(name, 4)
        assert pairs and all(src != dst for src, dst in pairs)

    def test_unknown_pattern_rejected(self):
        with pytest.raises(ValueError, match="unknown pattern"):
            make_pattern("teleport", 4)

    def test_too_few_ranks_rejected(self):
        with pytest.raises(ValueError):
            incast_pattern(1)


class TestSummary:
    def test_rolls_up_and_finds_busiest(self):
        stats = {
            "a->b": {"frames": 3, "busy_ns": 10.0, "peak_inflight": 1},
            "b->c": {"frames": 5, "busy_ns": 40.0, "peak_inflight": 4},
        }
        summary = summarize_link_stats(stats)
        assert summary["links"] == 2
        assert summary["total_frames"] == 8
        assert summary["total_busy_ns"] == 50.0
        assert summary["peak_inflight"] == 4
        assert summary["busiest_link"] == "b->c"
        assert summary["busiest_link_frames"] == 5

    def test_empty_snapshot(self):
        summary = summarize_link_stats({})
        assert summary["links"] == 0
        assert summary["busiest_link"] is None
