"""Traffic runners: pattern driving, stats lifecycle, campaign wrappers."""

import pytest

from repro.campaign.workloads import get_workload, workload_names
from repro.node.cluster import Cluster
from repro.node.config import SystemConfig
from repro.traffic.patterns import permutation_pattern
from repro.traffic.workloads import run_pattern, run_pserver

DET = SystemConfig.builder().deterministic().build()


class TestRunPattern:
    def test_permutation_round_trip(self):
        cluster = Cluster(2, config=DET)
        result = run_pattern(cluster, permutation_pattern(2), messages_per_pair=4)
        assert result["n_ranks"] == 2
        assert result["flows"] == 2
        assert result["messages"] == 8
        assert result["total_ns"] > 0
        assert result["message_rate_per_s"] > 0
        assert result["link_total_frames"] > 0

    def test_validation(self):
        cluster = Cluster(2, config=DET)
        with pytest.raises(ValueError, match="bad pair"):
            run_pattern(cluster, [(0, 0)])
        with pytest.raises(ValueError, match="bad pair"):
            run_pattern(cluster, [(0, 5)])
        with pytest.raises(ValueError, match="messages_per_pair"):
            run_pattern(cluster, [(0, 1)], messages_per_pair=0)

    def test_bursty_gaps_stretch_the_run(self):
        smooth = run_pattern(
            Cluster(2, config=DET), permutation_pattern(2), messages_per_pair=8
        )
        bursty = run_pattern(
            Cluster(2, config=DET),
            permutation_pattern(2),
            messages_per_pair=8,
            burst_len=2,
            gap_ns=5000.0,
        )
        # Three gaps land inside the run (after rounds 2, 4 and 6).
        assert bursty["total_ns"] >= smooth["total_ns"] + 3 * 5000.0

    def test_deterministic_repeat_in_fresh_clusters(self):
        first = run_pattern(
            Cluster(2, config=DET), permutation_pattern(2), messages_per_pair=4
        )
        second = run_pattern(
            Cluster(2, config=DET), permutation_pattern(2), messages_per_pair=4
        )
        assert first["total_ns"] == second["total_ns"]
        assert first["link_stats"] == second["link_stats"]


class TestLinkStatsLifecycle:
    """Satellite: back-to-back runs on one cluster do not bleed stats."""

    def test_reset_between_runs_scopes_each_snapshot(self):
        cluster = Cluster(2, config=DET)
        first = run_pattern(cluster, permutation_pattern(2), messages_per_pair=4)
        second = run_pattern(cluster, permutation_pattern(2), messages_per_pair=4)
        for key, entry in first["link_stats"].items():
            assert second["link_stats"][key]["frames"] == entry["frames"], key
        assert second["link_total_frames"] == first["link_total_frames"]

    def test_reset_stats_zeroes_wires_and_fabric_totals(self):
        cluster = Cluster(2, config=DET)
        run_pattern(cluster, permutation_pattern(2), messages_per_pair=2)
        assert any(
            entry["frames"] for entry in cluster.fabric.link_stats().values()
        )
        cluster.fabric.reset_stats()
        for entry in cluster.fabric.link_stats().values():
            assert entry["frames"] == 0
            assert entry["busy_ns"] == 0.0
        assert cluster.fabric.frames_delivered == 0
        assert cluster.fabric.acks_delivered == 0

    def test_snapshot_is_a_copy(self):
        cluster = Cluster(2, config=DET)
        run_pattern(cluster, permutation_pattern(2), messages_per_pair=2)
        snapshot = cluster.fabric.link_stats()
        key = next(iter(snapshot))
        snapshot[key]["frames"] = -1
        assert cluster.fabric.link_stats()[key]["frames"] != -1


class TestPserver:
    def test_push_pull_rounds(self):
        cluster = Cluster(3, config=DET)
        result = run_pserver(cluster, iterations=2)
        assert result["workers"] == 2
        assert result["iterations"] == 2
        assert result["total_ns"] > 0
        assert result["time_per_iteration_ns"] == result["total_ns"] / 2
        assert result["link_total_frames"] > 0

    def test_server_rank_validated(self):
        with pytest.raises(ValueError, match="server"):
            run_pserver(Cluster(3, config=DET), server=7)


class TestCampaignWrappers:
    def test_all_traffic_workloads_registered(self):
        names = workload_names()
        for name in (
            "traffic",
            "shuffle",
            "incast",
            "outcast",
            "halo",
            "stencil",
            "pserver",
            "randomaccess",
        ):
            assert name in names

    def test_shuffle_runs_all_to_all(self):
        result = get_workload("shuffle")(DET, n_nodes=3, messages_per_pair=1)
        assert result["pattern"] == "all_to_all"
        assert result["flows"] == 6
        assert result["messages"] == 6

    def test_incast_honours_hotspot(self):
        result = get_workload("incast")(DET, n_nodes=3, hotspot=1, messages_per_pair=1)
        assert result["pattern"] == "incast"
        assert result["flows"] == 2

    def test_halo_matches_direct_stencil_run(self):
        from repro.traffic.workloads import stencil_workload

        result = stencil_workload(DET, iterations=10)
        assert result["n_ranks"] == 2
        assert result["iterations"] == 10
        assert result["comm_ns_per_iteration"] > 0
        assert 0 < result["comm_fraction"] < 1

    def test_traffic_with_processes_per_node(self):
        result = get_workload("traffic")(
            DET,
            pattern="permutation",
            n_nodes=2,
            processes_per_node=2,
            messages_per_pair=1,
        )
        assert result["n_ranks"] == 4
        assert result["processes_per_node"] == 2

    def test_randomaccess_workload_measures_rates(self):
        result = get_workload("randomaccess")(
            DET, n_cores=2, updates_per_core=20
        )
        assert result["updates"] == 40
        assert result["gups"] > 0
        assert result["nic_gups"] > 0


class TestAppShims:
    def test_stencil_shim_warns_and_matches_traffic_result(self):
        from repro.apps.stencil import run_halo_exchange

        with pytest.warns(DeprecationWarning, match="run_halo_exchange is deprecated"):
            shim = run_halo_exchange(config=DET, iterations=10)
        from repro.traffic.workloads import halo_workload

        direct = halo_workload(DET, iterations=10)
        assert shim.total_comm_ns == direct["total_comm_ns"]
        assert shim.total_ns == direct["total_ns"]

    def test_randomaccess_shim_warns_and_delegates(self):
        from repro.apps.randomaccess import run_random_access

        with pytest.warns(DeprecationWarning, match="run_random_access is deprecated"):
            shim = run_random_access(n_cores=2, config=DET, updates_per_core=20)
        assert shim.updates == 40
        assert shim.gups > 0
