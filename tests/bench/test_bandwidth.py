"""Tests for the bandwidth benchmark (repro.bench.bandwidth)."""

import pytest

from repro.bench import realistic_bandwidth_config, run_uct_bandwidth


class TestBandwidth:
    def test_large_messages_saturate_the_wire(self):
        result = run_uct_bandwidth(262144, n_messages=40, warmup=10)
        assert result.bandwidth_bytes_per_ns == pytest.approx(12.5, rel=0.1)
        assert result.bandwidth_bytes_per_ns <= 12.5 + 1e-9

    def test_small_messages_rate_bound(self):
        result = run_uct_bandwidth(8, n_messages=60, warmup=16)
        # Far below the wire limit: the CPU and completion pipeline
        # gate 8-byte messages, not serialisation.
        assert result.bandwidth_bytes_per_ns < 0.1

    def test_wider_window_helps_small_messages(self):
        narrow = run_uct_bandwidth(8, n_messages=60, warmup=16, window=1)
        wide = run_uct_bandwidth(8, n_messages=60, warmup=16, window=16)
        # window=1 is synchronous posting (one gen_completion per
        # message); pipelining must beat it by a wide margin.
        assert wide.message_rate_per_s > 2 * narrow.message_rate_per_s

    def test_slower_wire_lowers_the_asymptote(self):
        slow = realistic_bandwidth_config(network_bytes_per_ns=5.0)
        result = run_uct_bandwidth(262144, config=slow, n_messages=30, warmup=8)
        assert result.bandwidth_bytes_per_ns == pytest.approx(5.0, rel=0.1)

    def test_pcie_can_be_the_bottleneck(self):
        starved = realistic_bandwidth_config(
            pcie_bytes_per_ns=4.0, network_bytes_per_ns=12.5
        )
        result = run_uct_bandwidth(262144, config=starved, n_messages=30, warmup=8)
        assert result.bandwidth_bytes_per_ns == pytest.approx(4.0, rel=0.15)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            run_uct_bandwidth(0)
        with pytest.raises(ValueError):
            run_uct_bandwidth(8, window=0)
