"""Integration tests for the UCX-perftest benchmarks (repro.bench.perftest)."""

import pytest

from repro.bench import run_am_lat, run_put_bw
from repro.node import SystemConfig


DET = SystemConfig.paper_testbed(deterministic=True)


class TestPutBw:
    @pytest.fixture(scope="class")
    def result(self):
        return run_put_bw(config=DET, n_messages=400, warmup=200)

    def test_observed_injection_matches_eq1(self, result):
        """Deterministic run: NIC-observed injection overhead must land
        on the Equation-1 model (295.73 ns) within 1%."""
        assert result.mean_injection_overhead_ns == pytest.approx(295.73, rel=0.01)

    def test_cpu_side_matches_nic_side(self, result):
        # Figure 5's overlap argument: the NIC sees the CPU's pace.
        assert result.cpu_side_injection_overhead_ns == pytest.approx(
            result.mean_injection_overhead_ns, rel=0.01
        )

    def test_busy_post_per_successful_post_in_steady_state(self, result):
        # §4.2: "after every successful LLP_post, there occurs a busy post".
        # The scheduled every-16 poll occasionally drains an extra CQE,
        # so allow 10% slack around the 1:1 steady state.
        assert result.busy_posts == pytest.approx(result.n_measured, rel=0.10)

    def test_delta_count_matches_messages(self, result):
        assert len(result.observed_injection_overheads_ns) == result.n_measured - 1

    def test_message_rate_consistent(self, result):
        rate = result.message_rate_per_s
        assert rate == pytest.approx(1e9 / result.cpu_side_injection_overhead_ns, rel=1e-6)

    def test_messages_journals_complete(self, result):
        for message in result.messages[:10]:
            assert "nic_arrival" in message.timestamps
            assert "posted" in message.timestamps

    def test_noise_widens_distribution(self):
        noisy = run_put_bw(
            config=SystemConfig.paper_testbed(), n_messages=400, warmup=200
        )
        deltas = noisy.observed_injection_overheads_ns
        assert deltas.std() > 10.0
        # Right-skewed like Figure 7: median below mean.
        import numpy as np

        assert np.median(deltas) < deltas.mean()

    def test_profiled_run_measures_requested_region(self):
        result = run_put_bw(
            config=DET, n_messages=200, warmup=100, profile_regions={"llp_post"}
        )
        assert result.profiler.corrected_mean("llp_post") == pytest.approx(
            175.42, rel=0.01
        )


class TestAmLat:
    @pytest.fixture(scope="class")
    def result(self):
        return run_am_lat(config=DET, iterations=200, warmup=40)

    def test_observed_latency_near_llp_model(self, result):
        """§4.3 model: 1135.8 ns; the paper's own observation is within
        5%, ours must be too."""
        assert result.observed_latency_ns == pytest.approx(1135.8, rel=0.05)

    def test_ping_journals_span_both_nodes(self, result):
        ping = result.pings[5]
        for stage in ("posted", "nic_arrival", "target_nic", "payload_visible"):
            assert stage in ping.timestamps

    def test_ping_count(self, result):
        assert len(result.pings) == 200

    def test_one_way_hardware_interval(self, result):
        """nic_arrival → target_nic must be exactly Network (382.81)."""
        ping = result.pings[0]
        assert ping.interval("nic_arrival", "target_nic") == pytest.approx(382.81)

    def test_direct_config_reduces_latency_by_switch(self):
        switched = run_am_lat(config=DET, iterations=100, warmup=20)
        direct = run_am_lat(
            config=SystemConfig.paper_testbed_direct(deterministic=True),
            iterations=100,
            warmup=20,
        )
        # One switch hop each way on the one-way latency: 108 ns.
        difference = switched.observed_latency_ns - direct.observed_latency_ns
        assert difference == pytest.approx(108.0, abs=10.0)
