"""Fast-forwarded put_bw runs must reproduce full replay exactly.

The acceptance bar for the analytic fast-forward is bitwise equality
of every virtual time a replay would produce: the measured window, the
final clock, the analyzer-derived inter-arrival deltas and each
message's full timestamp journal.  ``fast_forward=True`` forces the
model (probe validation still gates it); ``fast_forward=False`` forces
replay on the identical parameters.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.bench.fastforward import plan_put_bw, simulate_put_bw
from repro.bench.perftest import run_put_bw
from repro.node.config import SystemConfig
from repro.node.testbed import Testbed


def assert_matches_replay(config: SystemConfig, **kwargs) -> None:
    ff = run_put_bw(config=config, fast_forward=True, **kwargs)
    full = run_put_bw(config=config, fast_forward=False, **kwargs)
    assert ff.total_ns == full.total_ns
    assert ff.busy_posts == full.busy_posts
    assert ff.n_measured == full.n_measured
    assert ff.testbed.env.now == full.testbed.env.now
    assert np.array_equal(
        ff.observed_injection_overheads_ns, full.observed_injection_overheads_ns
    )
    assert len(ff.messages) == len(full.messages)
    for synthesized, replayed in zip(ff.messages, full.messages):
        assert synthesized.timestamps == replayed.timestamps
    cpu_ff = ff.testbed.initiator.cpu
    cpu_full = full.testbed.initiator.cpu
    assert cpu_ff.busy_ns == cpu_full.busy_ns
    for segment, account in cpu_full.accounts.items():
        assert cpu_ff.account(segment).count == account.count
        assert cpu_ff.account(segment).total_ns == account.total_ns


class TestFastForwardExactness:
    def test_deterministic_defaults(self):
        assert_matches_replay(
            SystemConfig.paper_testbed(deterministic=True),
            n_messages=400,
            warmup=64,
        )

    def test_noisy_paper_seed(self):
        assert_matches_replay(
            SystemConfig.paper_testbed(), n_messages=400, warmup=64
        )

    def test_noisy_other_seed_and_poll(self):
        assert_matches_replay(
            SystemConfig.paper_testbed(seed=7),
            n_messages=350,
            warmup=130,
            poll_interval=5,
        )

    def test_two_chunk_payload(self):
        # 32 B payload: ceil((48+32)/64) = 2 PIO chunks, different folds.
        assert_matches_replay(
            SystemConfig.paper_testbed(deterministic=True),
            n_messages=300,
            warmup=40,
            payload_bytes=32,
            poll_interval=8,
        )

    def test_warmup_smaller_than_txq(self):
        # Warmup below the TxQ depth: busy posts begin mid-measurement.
        assert_matches_replay(
            SystemConfig.paper_testbed(seed=11), n_messages=300, warmup=8
        )


class TestFastForwardEngagement:
    def test_auto_engages_on_long_default_run(self):
        result = run_put_bw(n_messages=2000)
        env = result.testbed.env
        assert env.events_executed == 0
        assert env.events_fast_forwarded > 0

    def test_auto_replays_short_runs(self):
        result = run_put_bw(n_messages=200, warmup=32)
        env = result.testbed.env
        assert env.events_executed > 0
        # Short runs keep their analyzer trace.
        assert result.testbed.analyzer.records

    def test_false_always_replays(self):
        result = run_put_bw(n_messages=2000, fast_forward=False)
        assert result.testbed.env.events_executed > 0
        assert result.testbed.analyzer.records

    def test_event_credit_is_replay_scale(self):
        ff = run_put_bw(n_messages=2000)
        full = run_put_bw(n_messages=2000, fast_forward=False)
        env = full.testbed.env
        effective = env.events_executed + env.events_fast_forwarded
        credited = ff.testbed.env.events_fast_forwarded
        assert credited == pytest.approx(effective, rel=0.05)


class TestFastForwardFallbacks:
    def test_prepared_testbed_replays(self):
        tb = Testbed(SystemConfig.paper_testbed(deterministic=True))
        result = run_put_bw(testbed=tb, n_messages=2000)
        assert result.testbed.env.events_executed > 0

    def test_profiled_run_replays(self):
        result = run_put_bw(
            config=SystemConfig.paper_testbed(deterministic=True),
            n_messages=2000,
            profile_regions={"llp_post"},
            fast_forward=True,
        )
        assert result.testbed.env.events_executed > 0
        assert result.profiler.stats("llp_post").count > 0

    def test_fault_plan_replays(self):
        from repro.faults import FaultPlan, FaultRule

        plan = FaultPlan(
            rules=(
                FaultRule(site="network.wire", kind="nth", occurrences=(100000,)),
            )
        )
        config = dataclasses.replace(
            SystemConfig.paper_testbed(deterministic=True), faults=plan
        )
        result = run_put_bw(config=config, n_messages=2000, fast_forward=True)
        assert result.testbed.env.events_executed > 0

    def test_finite_wire_bandwidth_replays(self):
        base = SystemConfig.paper_testbed(deterministic=True)
        config = dataclasses.replace(
            base,
            network=dataclasses.replace(base.network, bandwidth_bytes_per_ns=25.0),
        )
        result = run_put_bw(config=config, n_messages=1500, fast_forward=True)
        assert result.testbed.env.events_executed > 0


class TestPlanner:
    def build(self, config):
        from repro.llp.uct import UctWorker

        tb = Testbed(config)
        worker = UctWorker(tb.initiator)
        iface = worker.create_iface(signal_period=1)
        target = UctWorker(tb.target).create_iface()
        ep = iface.create_ep(target)
        return tb, iface, ep

    def test_paper_testbed_is_eligible(self):
        tb, iface, ep = self.build(SystemConfig.paper_testbed())
        folds = plan_put_bw(tb, iface, ep, 8)
        assert folds is not None
        assert folds.chunks == 1
        # Forward route: wire + one switch.
        assert folds.fwd_deltas == (
            tb.config.network.wire_latency_ns,
            tb.config.network.switch_latency_ns,
        )

    def test_oversize_payload_rejected(self):
        tb, iface, ep = self.build(SystemConfig.paper_testbed())
        assert plan_put_bw(tb, iface, ep, 4096) is None

    def test_dirty_environment_rejected(self):
        tb, iface, ep = self.build(SystemConfig.paper_testbed())
        tb.env.defer(lambda: None, 1.0)
        tb.env.run(until=2.0)
        assert plan_put_bw(tb, iface, ep, 8) is None

    def test_model_bails_outside_modelled_regime(self):
        tb, iface, ep = self.build(SystemConfig.paper_testbed())
        folds = plan_put_bw(tb, iface, ep, 8)
        assert simulate_put_bw(folds, tb.config, 10, 0, 16) is None
        assert simulate_put_bw(folds, tb.config, 0, 4, 16) is None
