"""Integration tests for the OSU benchmarks (repro.bench.osu)."""

import pytest

from repro.bench import run_osu_latency, run_osu_message_rate
from repro.node import SystemConfig


DET = SystemConfig.paper_testbed(deterministic=True)


class TestMessageRate:
    @pytest.fixture(scope="class")
    def result(self):
        return run_osu_message_rate(config=DET, windows=16, warmup_windows=6)

    def test_overall_injection_near_eq2(self, result):
        """Equation 2: 264.97 ns with paper values; the paper observed
        263.91 (<1% error).  Our emergent value must sit within 2%."""
        assert result.cpu_side_injection_overhead_ns == pytest.approx(264.97, rel=0.02)

    def test_nic_observed_matches_cpu_side(self, result):
        # The window structure makes NIC arrivals bursty (back-to-back
        # within a window, a gap across the waitall), but the mean
        # inter-arrival still tracks the CPU pace.
        assert result.mean_injection_overhead_ns == pytest.approx(
            result.cpu_side_injection_overhead_ns, rel=0.03
        )

    def test_post_prog_emerges_near_paper_value(self, result):
        # §6: Post_prog = 59.82 ns/op (calibrated emergent quantity).
        assert result.post_prog_ns_per_op == pytest.approx(59.82, rel=0.05)

    def test_busy_posts_occur(self, result):
        assert result.busy_posts > 0

    def test_waitall_deduction_positive(self, result):
        assert result.waitall_llp_post_ns > 0
        assert result.waitall_ns > result.waitall_llp_post_ns

    def test_phase_accounting_sums_to_total(self, result):
        assert result.isend_phase_ns + result.waitall_ns == pytest.approx(
            result.total_ns, rel=1e-6
        )


class TestOsuLatency:
    @pytest.fixture(scope="class")
    def result(self):
        return run_osu_latency(config=DET, iterations=150, warmup=30)

    def test_latency_near_e2e_model(self, result):
        """§6 model: 1387.02 ns; paper observed 1336 (4% gap)."""
        assert result.observed_latency_ns == pytest.approx(1387.02, rel=0.05)

    def test_pings_collected(self, result):
        assert len(result.pings) == 150

    def test_ping_payload_visible_on_target(self, result):
        assert "payload_visible" in result.pings[0].timestamps

    def test_latency_larger_than_llp_level(self):
        """The HLP must add measurable time over the raw UCT path."""
        from repro.bench import run_am_lat

        llp = run_am_lat(config=DET, iterations=100, warmup=20)
        mpi = run_osu_latency(config=DET, iterations=100, warmup=20)
        added = mpi.observed_latency_ns - llp.observed_latency_ns
        # HLP_post (26.56) + HLP_rx_prog (224.66) ≈ 251 ns, minus small
        # overlap effects.
        assert 150.0 < added < 350.0


class TestMultiPairMessageRate:
    def test_single_pair_matches_osu_mr(self):
        from repro.bench import run_osu_multi_pair_message_rate

        result = run_osu_multi_pair_message_rate(
            1, config=DET, windows=10, warmup_windows=4
        )
        # One pair is the plain OSU message-rate pace (Eq. 2).
        per_op = 1e9 / result.per_pair_rate_per_s
        assert per_op == pytest.approx(264.97, rel=0.02)

    def test_pairs_scale_linearly(self):
        from repro.bench import run_osu_multi_pair_message_rate

        one = run_osu_multi_pair_message_rate(
            1, config=DET, windows=10, warmup_windows=4
        )
        four = run_osu_multi_pair_message_rate(
            4, config=DET, windows=10, warmup_windows=4
        )
        assert four.aggregate_rate_per_s == pytest.approx(
            4 * one.aggregate_rate_per_s, rel=0.03
        )

    def test_invalid_pair_count_rejected(self):
        from repro.bench import run_osu_multi_pair_message_rate

        with pytest.raises(ValueError):
            run_osu_multi_pair_message_rate(0, config=DET)
