"""Integration tests for multi-core injection (repro.bench.multicore)."""

import pytest

from repro.bench import run_multicore_put_bw
from repro.node import SystemConfig

DET = SystemConfig.paper_testbed(deterministic=True)


class TestSingleCoreEquivalence:
    def test_one_core_matches_put_bw_pace(self):
        result = run_multicore_put_bw(
            1, config=DET, n_messages_per_core=200, warmup_per_core=100
        )
        # One core is just put_bw: per-core injection near the Eq. 1
        # model (the multicore loop has no scheduled poll overlap quirk,
        # so it sits a touch below 295.73).
        assert result.mean_injection_overhead_ns == pytest.approx(295.73, rel=0.06)
        assert result.credit_stalls == 0


class TestScaling:
    @pytest.fixture(scope="class")
    def sweep(self):
        return {
            n: run_multicore_put_bw(
                n, config=DET, n_messages_per_core=150, warmup_per_core=80
            )
            for n in (1, 4, 16, 64)
        }

    def test_linear_regime(self, sweep):
        single = sweep[1].aggregate_rate_per_s
        assert sweep[4].aggregate_rate_per_s == pytest.approx(4 * single, rel=0.05)
        assert sweep[16].aggregate_rate_per_s == pytest.approx(16 * single, rel=0.05)

    def test_no_stalls_in_linear_regime(self, sweep):
        # §4.2's observation generalises to a modest core count.
        assert sweep[4].credit_stalls == 0
        assert sweep[16].credit_stalls == 0

    def test_credit_wall_at_high_core_count(self, sweep):
        wall = sweep[64]
        assert wall.credit_stalls > 0
        # NIC-side rate falls below the CPU-side demand.
        assert wall.nic_rate_per_s < wall.aggregate_rate_per_s

    def test_per_core_fairness(self, sweep):
        counts = sweep[16].per_core_message_counts
        assert max(counts) - min(counts) == 0  # deterministic & symmetric

    def test_invalid_core_count_rejected(self):
        with pytest.raises(ValueError):
            run_multicore_put_bw(0, config=DET)


class TestNodeCores:
    def test_node_add_core(self):
        from repro.node import Testbed

        tb = Testbed(DET)
        assert len(tb.node1.cores) == 1
        core = tb.node1.add_core()
        assert len(tb.node1.cores) == 2
        assert core.name == "node1.cpu1"
        assert tb.node1.cpu is tb.node1.cores[0]

    def test_cores_have_independent_noise_streams(self):
        from repro.node import Testbed

        tb = Testbed(SystemConfig.paper_testbed())
        second = tb.node1.add_core()
        a = tb.node1.cpu.rng.random(8)
        b = second.rng.random(8)
        assert not (a == b).all()

    def test_multicore_node_constructor(self):
        from repro.node.node import Node
        from repro.sim.rng import RandomStreams
        from repro.sim import Environment

        node = Node(Environment(), DET, RandomStreams(0), "n", n_cores=4)
        assert len(node.cores) == 4
        with pytest.raises(ValueError):
            Node(Environment(), DET, RandomStreams(0), "n", n_cores=0)
