"""ISSUE-5 acceptance: 64-node ring allreduce on a k=4 fat-tree.

The scale-out payoff of the whole PR: 64 ranks, 8 bytes each, routed
over a k=4 fat-tree with per-link FIFO contention, on the callback fast
tier (~1M events in a few seconds of wall clock).  The measured
completion time must match the analytic 2(N−1)-step model — the
paper's §6 per-message latency components composed over the ring's
dependency chain with the actual routed per-link latencies — within 5%.
"""

import pytest

from repro.collectives import predicted_ring_allreduce_ns, ring_allreduce
from repro.node.cluster import Cluster
from repro.node.config import SystemConfig

N_NODES = 64


class TestRingAllreduce64:
    @pytest.fixture(scope="class")
    def outcome(self):
        config = (
            SystemConfig.builder().deterministic().topology("fat_tree:4").build()
        )
        cluster = Cluster(N_NODES, config=config)
        result = ring_allreduce(cluster, payload_bytes=8, iterations=1)
        return cluster, result

    def test_completes_within_5pct_of_the_2n_minus_1_step_model(self, outcome):
        cluster, result = outcome
        predicted = predicted_ring_allreduce_ns(
            N_NODES, cluster.config, cluster.topology, iterations=1
        )
        error = abs(result.total_ns - predicted) / predicted
        assert error < 0.05, (
            f"64-node ring allreduce off by {error:.2%}: "
            f"simulated {result.total_ns:.1f} ns vs model {predicted:.1f} ns"
        )

    def test_steps_and_shape(self, outcome):
        _, result = outcome
        assert result.n_nodes == N_NODES
        assert result.steps == 2 * (N_NODES - 1)
        assert result.payload_bytes == 8

    def test_traffic_actually_crossed_shared_fabric_links(self, outcome):
        cluster, _ = outcome
        stats = cluster.fabric.link_stats()
        # 64 hosts on 8 edge switches: consecutive ranks mostly talk
        # within their edge switch, but every 8th ring hop crosses the
        # aggregation/core tiers on shared cables.
        core_links = {
            name: s for name, s in stats.items() if "ft.c" in name and s["frames"]
        }
        assert core_links, "no traffic crossed the core tier"
        assert any(s["peak_inflight"] > 1 for s in stats.values()), (
            "no link ever carried two frames at once"
        )
