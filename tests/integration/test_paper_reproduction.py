"""End-to-end reproduction checks: the paper's headline results.

These tests tie the whole system together: simulator → benchmarks →
methodology → models → breakdowns, asserting the paper's central
quantitative findings.
"""

import pytest

from repro import (
    ComponentTimes,
    EndToEndLatencyModel,
    InjectionModelLlp,
    LatencyModelLlp,
    OverallInjectionModel,
    SystemConfig,
)
from repro.bench import run_am_lat, run_osu_latency, run_osu_message_rate, run_put_bw
from repro.core.insights import all_insights

DET = SystemConfig.paper_testbed(deterministic=True)
PAPER = ComponentTimes.paper()


class TestHeadlineNumbers:
    """Paper abstract: 'Our analytical models estimate the observed
    performance within a 5% margin of error on Arm ThunderX2.'"""

    def test_llp_injection_5pct(self):
        result = run_put_bw(config=DET, n_messages=400, warmup=200)
        model = InjectionModelLlp(PAPER).predicted_ns
        assert abs(model - result.mean_injection_overhead_ns) / model < 0.05

    def test_llp_latency_5pct(self):
        result = run_am_lat(config=DET, iterations=150, warmup=30)
        model = LatencyModelLlp(PAPER).predicted_ns
        observed = result.observed_latency_ns - PAPER.measurement_update / 2
        assert abs(model - observed) / observed < 0.05

    def test_overall_injection_2pct(self):
        result = run_osu_message_rate(config=DET, windows=16, warmup_windows=6)
        model = OverallInjectionModel(PAPER).predicted_ns
        assert abs(model - result.cpu_side_injection_overhead_ns) / model < 0.02

    def test_e2e_latency_4pct(self):
        result = run_osu_latency(config=DET, iterations=150, warmup=30)
        model = EndToEndLatencyModel(PAPER).predicted_ns
        assert abs(model - result.observed_latency_ns) / model < 0.04


class TestInsightsOnSimulatedSystem:
    def test_insights_hold_on_paper_calibration(self):
        assert all(insight.holds for insight in all_insights(PAPER))


class TestGroundTruthAgainstJournals:
    """Cross-validation: the message journals (ground truth) must agree
    with the analytical decomposition stage by stage."""

    @pytest.fixture(scope="class")
    def ping(self):
        result = run_am_lat(config=DET, iterations=60, warmup=20)
        return result.pings[10]

    def test_tx_pcie_interval(self, ping):
        assert ping.interval("pio_written", "nic_arrival") == pytest.approx(137.49)

    def test_network_interval(self, ping):
        assert ping.interval("nic_arrival", "target_nic") == pytest.approx(382.81)

    def test_rx_pcie_plus_rc_to_mem_interval(self, ping):
        assert ping.interval("target_nic", "payload_visible") == pytest.approx(
            137.49 + 240.96
        )

    def test_ack_round_trip(self, ping):
        assert ping.interval("wire_out", "ack_rx") == pytest.approx(2 * 382.81)


class TestWhatIfAgainstResimulation:
    """§7: 'evaluating the impacts of reductions ... through a
    distributed system simulator results in exactly the same linear
    speedups'.  Verify one point of Figure 17 by actually re-running
    the simulator with the reduced component."""

    def test_pio_reduction_latency_speedup_matches_whatif(self):
        from repro.core.whatif import Metric, WhatIfAnalysis
        from repro.cpu.costs import SegmentCosts
        from repro.cpu.memory import MemoryModel

        baseline = run_osu_latency(config=DET, iterations=100, warmup=20)

        reduced_pio = 94.25 * 0.5
        fast_config = DET.evolve(
            costs=SegmentCosts(pio_copy_64b=reduced_pio),
            memory=MemoryModel(device_write_64b=reduced_pio),
        )
        faster = run_osu_latency(config=fast_config, iterations=100, warmup=20)

        observed_speedup = (
            baseline.observed_latency_ns - faster.observed_latency_ns
        ) / baseline.observed_latency_ns
        predicted = WhatIfAnalysis(PAPER).speedup(Metric.LATENCY, PAPER.pio_copy, 0.5)
        # Two PIO copies per round trip halve symmetrically; one-way
        # speedup matches the model point within noise.
        assert observed_speedup == pytest.approx(predicted, abs=0.01)

    def test_switch_removal_matches_whatif(self):
        from repro.core.whatif import Metric, WhatIfAnalysis

        baseline = run_osu_latency(config=DET, iterations=100, warmup=20)
        direct = run_osu_latency(
            config=SystemConfig.paper_testbed_direct(deterministic=True),
            iterations=100,
            warmup=20,
        )
        observed_speedup = (
            baseline.observed_latency_ns - direct.observed_latency_ns
        ) / baseline.observed_latency_ns
        predicted = WhatIfAnalysis(PAPER).speedup(Metric.LATENCY, PAPER.switch, 1.0)
        assert observed_speedup == pytest.approx(predicted, abs=0.01)


class TestSeedStability:
    def test_noisy_results_reproducible_for_fixed_seed(self):
        first = run_put_bw(
            config=SystemConfig.paper_testbed(seed=99), n_messages=150, warmup=100
        )
        second = run_put_bw(
            config=SystemConfig.paper_testbed(seed=99), n_messages=150, warmup=100
        )
        assert first.mean_injection_overhead_ns == second.mean_injection_overhead_ns

    def test_different_seeds_differ(self):
        a = run_put_bw(
            config=SystemConfig.paper_testbed(seed=1), n_messages=150, warmup=100
        )
        b = run_put_bw(
            config=SystemConfig.paper_testbed(seed=2), n_messages=150, warmup=100
        )
        assert a.mean_injection_overhead_ns != b.mean_injection_overhead_ns
