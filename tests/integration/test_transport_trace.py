"""Trace-level proof that same-node ranks bypass the PCIe/NIC path.

The acceptance check for the shared-memory transport: run a collective
with two ranks per node and verify, from the recorded timeline itself,
that every intra-node message lives entirely in cpu/transport land —
zero PCIe, NIC or network events — while inter-node messages still walk
the full stack.
"""

from repro.collectives.algorithms import ring_allreduce
from repro.node.cluster import Cluster
from repro.node.config import SystemConfig
from repro.trace import trace_session

DET = SystemConfig.builder().deterministic().build()

HW_LAYERS = {"pcie", "nic", "network"}


def _events_by_message(session):
    """msg id → set of layers that recorded any span/instant for it."""
    layers: dict[object, set[str]] = {}
    for event in session.spans() + session.instants():
        msg = event.attrs.get("msg")
        if msg is not None:
            layers.setdefault(msg, set()).add(event.layer)
    return layers


class TestIntraNodeBypass:
    def test_shm_messages_have_zero_pcie_nic_events(self):
        with trace_session() as session:
            cluster = Cluster(2, config=DET, processes_per_node=2)
            result = ring_allreduce(cluster, iterations=1)
        assert result.processes_per_node == 2
        assert result.total_ns > 0

        shm_messages = {
            span.attrs["msg"]
            for tracer in session.tracers
            for span in tracer.spans()
            if span.layer == "transport" and span.name == "shm_post"
        }
        # A 4-rank ring on 2 nodes has intra-node neighbour pairs
        # (0,1) and (2,3) in both directions.
        assert shm_messages

        layers = _events_by_message(session)
        nic_messages = {msg for msg in layers if msg not in shm_messages}
        # The ring also crosses the node boundary, so the control group
        # is non-empty and does use the hardware path.
        assert nic_messages
        assert any(layers[msg] & HW_LAYERS for msg in nic_messages)

        for msg in shm_messages:
            hw = layers[msg] & HW_LAYERS
            assert not hw, f"shm message {msg} touched hardware layers {hw}"

    def test_single_rank_per_node_has_no_shm_events(self):
        with trace_session() as session:
            cluster = Cluster(2, config=DET)
            ring_allreduce(cluster, iterations=1)
        assert not [
            span
            for tracer in session.tracers
            for span in tracer.spans()
            if span.layer == "transport"
        ]
