"""Golden-timeline determinism tests for the two-tier kernel.

The digests below were captured on the generator-only kernel — before
the callback fast path (``Environment.defer``/``chain``) existed — with
``tools/capture_golden.py``.  Every seeded reference run must still
produce the *same* traced timeline, bit for bit: same virtual
timestamps (float-exact, so every hop's floating-point sum is
preserved), same record order, same span attributes, same measurements.
Any drift means the refactor changed simulated physics, not just
wall-clock cost.

``exact`` hashes the begin-ordered timeline (order-sensitive);
``sorted`` hashes the lexicographic multiset (order-insensitive — if
``exact`` breaks but ``sorted`` holds, only tie-breaking moved).

Timelines embed identity counters (message/TLP/frame ids) that are
process-global, so each comparison runs the capture tool in a **fresh
subprocess**, one scenario per process — exactly how the pinned values
were captured on the pre-refactor kernel (commit 504d447 tree).

To re-pin after an *intentional* timing change::

    for s in <scenario>; do PYTHONPATH=src python tools/capture_golden.py $s; done
"""

import importlib.util
import json
import pathlib
import subprocess
import sys

import pytest

_REPO = pathlib.Path(__file__).resolve().parents[2]
_CAPTURE = _REPO / "tools" / "capture_golden.py"
_spec = importlib.util.spec_from_file_location("capture_golden", _CAPTURE)
capture_golden = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(capture_golden)

#: Per-scenario digests, each captured by a fresh single-scenario
#: subprocess on the pre-refactor kernel — see the module docstring
#: before touching any value.
GOLDEN = {
    "put_bw_deterministic": {
        "events": 1920,
        "exact": "36f8626877132aa181962d5474e8f606285e2ddc65ce33e514567815dd30730c",
        "sorted": "435ddacc1f2a358f5187d616184474dbd9ee3e6fc76fd8ae5969189cefca6295",
        "measurements": (
            "9459940a137ce52fc15a4ddde05c55fbb9b47eab2cff6a24f5271e07bc1403ed"
        ),
    },
    "put_bw_jittered_seed7": {
        "events": 1920,
        "exact": "4594974d27a748d1a7a5204d34206d92def8e01e309b6f0cb89d9560972ceb3f",
        "sorted": "811b19eac0cf638d3d54359ccbb017788f906874d9d7c23c4c616b28285a0525",
        "measurements": (
            "33ff2e206a9d3a852128bd32050b13b2f6b8d63b68f85cc7e42dd327bf5a9c2e"
        ),
    },
    "am_lat_deterministic": {
        "events": 2496,
        "exact": "cab36711d533c23ebc3806814ad29905f8ef96174e7d9e0123b0eab36a2ade7a",
        "sorted": "6b82ae0fb41e3cbc429543a4e560af6bc9c360f56dd1b32dc5e5c8908716ceb6",
        "measurements": (
            "c67b09a136d51e177e483e05e277b5ed617b278c5faec3e1d38615aa711a8f19"
        ),
    },
    "am_lat_lossy_pcie": {
        "events": 2511,
        "exact": "b01068b69d2c9e9ce7453eb129678bceb1d5b88c3506f641c930df4811c6da56",
        "sorted": "f8b271a1aa98614432579edf3164fa1a86a5c7cf0d0866bee365b57ceb9c5ad2",
        "measurements": (
            "04dbee56feed50493bfc38fb9bdb15d282018790e6bfe5068858fb6f59118909"
        ),
    },
}


def _capture_in_subprocess(scenario: str) -> dict:
    """Run one scenario through the capture tool in a fresh interpreter."""
    proc = subprocess.run(
        [sys.executable, str(_CAPTURE), scenario],
        capture_output=True,
        text=True,
        cwd=_REPO,
        env={"PYTHONPATH": str(_REPO / "src"), "PATH": "/usr/bin:/bin"},
        timeout=120,
    )
    assert proc.returncode == 0, proc.stderr
    return json.loads(proc.stdout)[scenario]


class TestGoldenTimelines:
    @pytest.mark.parametrize("name", sorted(GOLDEN))
    def test_timeline_matches_pre_refactor_kernel(self, name):
        digest = _capture_in_subprocess(name)
        expected = GOLDEN[name]
        assert digest["events"] == expected["events"]
        assert digest["measurements"] == expected["measurements"]
        # Order-insensitive first: a 'sorted' mismatch means timestamps
        # or span contents moved, not merely tie-breaking.
        assert digest["sorted"] == expected["sorted"]
        assert digest["exact"] == expected["exact"]

    def test_scenarios_stay_in_sync_with_capture_tool(self):
        assert set(GOLDEN) == set(capture_golden.golden_runs())

    def test_run_to_run_determinism(self):
        # Two fresh interpreters, same jittered scenario: identical
        # timelines prove the seeded RNG path is untouched by
        # scheduling-order or interpreter-state accidents.
        first = _capture_in_subprocess("put_bw_jittered_seed7")
        second = _capture_in_subprocess("put_bw_jittered_seed7")
        assert first == second

    def test_traced_timeline_covers_migrated_layers(self):
        # The callback-tier migration moved pcie/network/nic machinery
        # off the Process tier; the tracer must still see all of it.
        from repro.trace import trace_session
        from repro.trace.golden import timeline_lines

        run, _ = capture_golden.golden_runs()["put_bw_deterministic"]
        with trace_session() as session:
            run()
        lines = "\n".join(timeline_lines(session.tracers))
        for needle in ('"pcie"', '"network"', '"nic"', '"wire"', '"rc_to_mem"'):
            assert needle in lines, f"missing {needle} in traced timeline"
