"""Unit tests for canonical serialization (repro.sim.hashing)."""

import enum
import subprocess
import sys
from dataclasses import dataclass
from pathlib import Path

import numpy as np
import pytest

import repro
from repro.node.config import SystemConfig
from repro.sim import canonical_json, canonicalize, stable_digest


class Color(enum.Enum):
    RED = "red"
    BLUE = "blue"


@dataclass(frozen=True)
class Inner:
    x: int = 1


@dataclass(frozen=True)
class Outer:
    inner: Inner
    name: str = "outer"


class TestCanonicalize:
    def test_primitives_pass_through(self):
        assert canonicalize(3) == 3
        assert canonicalize(2.5) == 2.5
        assert canonicalize("s") == "s"
        assert canonicalize(None) is None
        assert canonicalize(True) is True

    def test_dataclass_keyed_by_qualified_name(self):
        result = canonicalize(Inner(x=7))
        (key,) = result
        assert key.endswith(".Inner")
        assert result[key] == {"x": 7}

    def test_nested_dataclasses(self):
        result = canonicalize(Outer(inner=Inner(x=2)))
        (key,) = result
        inner = result[key]["inner"]
        (inner_key,) = inner
        assert inner[inner_key] == {"x": 2}

    def test_enum_by_value(self):
        assert canonicalize(Color.RED) == "red"

    def test_dicts_sorted(self):
        assert canonical_json({"b": 1, "a": 2}) == canonical_json(
            {"a": 2, "b": 1}
        )

    def test_sets_sorted(self):
        assert canonicalize({3, 1, 2}) == [1, 2, 3]

    def test_numpy_scalars_unwrapped(self):
        assert canonicalize(np.float64(1.5)) == 1.5
        assert canonicalize(np.int64(4)) == 4

    def test_unsupported_type_rejected(self):
        with pytest.raises(TypeError):
            canonicalize(object())

    def test_json_is_compact_and_deterministic(self):
        text = canonical_json({"k": [1, 2], "a": "v"})
        assert " " not in text
        assert text == canonical_json({"a": "v", "k": [1, 2]})


class TestStableDigest:
    def test_digest_is_hex_of_requested_length(self):
        digest = stable_digest({"a": 1})
        assert len(digest) == 16
        int(digest, 16)

    def test_digest_length_parameter(self):
        assert len(stable_digest("x", length=8)) == 8

    def test_equal_values_equal_digests(self):
        assert stable_digest(Inner(x=1)) == stable_digest(Inner(x=1))

    def test_different_values_differ(self):
        assert stable_digest(Inner(x=1)) != stable_digest(Inner(x=2))


class TestSystemConfigStableHash:
    def test_hash_is_deterministic_within_process(self):
        a = SystemConfig.paper_testbed()
        b = SystemConfig.paper_testbed()
        assert a.stable_hash() == b.stable_hash()

    def test_evolve_seed_changes_hash(self):
        config = SystemConfig.paper_testbed()
        assert config.stable_hash() != config.evolve(seed=1).stable_hash()

    def test_evolve_nested_component_changes_hash(self):
        config = SystemConfig.paper_testbed()
        from repro.nic.config import NicConfig

        evolved = config.evolve(nic=NicConfig(txq_depth=3))
        assert config.stable_hash() != evolved.stable_hash()

    def test_hash_survives_process_boundary(self):
        # Python's built-in hash() is salted per process; the stable
        # hash must not be.  Recompute in a subprocess and compare.
        config = SystemConfig.paper_testbed()
        src_dir = Path(repro.__file__).resolve().parents[1]
        script = (
            "from repro.node.config import SystemConfig;"
            "print(SystemConfig.paper_testbed().stable_hash())"
        )
        output = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            check=True,
            env={"PYTHONPATH": str(src_dir), "PATH": "/usr/bin:/bin"},
        ).stdout.strip()
        assert output == config.stable_hash()
