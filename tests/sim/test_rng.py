"""Unit tests for deterministic randomness (repro.sim.rng)."""

import numpy as np
import pytest

from repro.sim import JitterModel, RandomStreams


class TestRandomStreams:
    def test_same_seed_same_sequence(self):
        a = RandomStreams(seed=7).get("pcie.link")
        b = RandomStreams(seed=7).get("pcie.link")
        assert np.array_equal(a.random(16), b.random(16))

    def test_different_names_independent(self):
        streams = RandomStreams(seed=7)
        x = streams.get("alpha").random(16)
        y = streams.get("beta").random(16)
        assert not np.array_equal(x, y)

    def test_different_seeds_differ(self):
        x = RandomStreams(seed=1).get("s").random(16)
        y = RandomStreams(seed=2).get("s").random(16)
        assert not np.array_equal(x, y)

    def test_order_independence(self):
        first = RandomStreams(seed=3)
        first.get("a")
        va = first.get("b").random(8)
        second = RandomStreams(seed=3)
        vb = second.get("b").random(8)
        assert np.array_equal(va, vb)

    def test_stream_cached(self):
        streams = RandomStreams(seed=0)
        assert streams.get("x") is streams.get("x")

    def test_child_scoping(self):
        streams = RandomStreams(seed=5)
        scoped = streams.child("nic")
        direct = streams.get("nic.txq").random(4)
        # A fresh root must see the same values through the scoped view.
        fresh = RandomStreams(seed=5).child("nic").get("txq").random(4)
        assert np.array_equal(direct, fresh)

    def test_nested_child(self):
        streams = RandomStreams(seed=5)
        nested = streams.child("node1").child("nic")
        same = RandomStreams(seed=5).get("node1.nic.dma").random(4)
        assert np.array_equal(nested.get("dma").random(4), same)


class TestJitterModel:
    def test_deterministic_model_returns_mean(self):
        model = JitterModel.deterministic()
        rng = np.random.default_rng(0)
        assert model.sample(100.0, rng) == 100.0

    def test_zero_mean_returns_zero(self):
        model = JitterModel()
        rng = np.random.default_rng(0)
        assert model.sample(0.0, rng) == 0.0

    def test_negative_mean_rejected(self):
        model = JitterModel()
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            model.sample(-1.0, rng)

    def test_sample_mean_close_to_nominal(self):
        model = JitterModel(cv=0.15, outlier_prob=0.0)
        rng = np.random.default_rng(42)
        samples = model.sample_many(282.0, 20000, rng)
        assert samples.mean() == pytest.approx(282.0, rel=0.02)

    def test_right_skew_median_below_mean(self):
        # Calibration target: the paper's Figure 7 has median < mean.
        model = JitterModel(cv=0.2, outlier_prob=0.0)
        rng = np.random.default_rng(42)
        samples = model.sample_many(282.0, 20000, rng)
        assert np.median(samples) < samples.mean()

    def test_floor_enforced(self):
        model = JitterModel(cv=0.5, outlier_prob=0.0, floor_fraction=0.71)
        rng = np.random.default_rng(0)
        samples = model.sample_many(100.0, 5000, rng)
        assert samples.min() >= 71.0 - 1e-9

    def test_outliers_present_when_enabled(self):
        model = JitterModel(cv=0.1, outlier_prob=0.01, outlier_scale=25.0)
        rng = np.random.default_rng(1)
        samples = model.sample_many(282.0, 5000, rng)
        # With 1% outliers at >=25x the mean, the max must be huge.
        assert samples.max() > 282.0 * 20

    def test_mixture_mean_is_unbiased(self):
        # The body gain must exactly compensate the tail mass.
        model = JitterModel()
        rng = np.random.default_rng(3)
        samples = model.sample_many(100.0, 400000, rng)
        assert samples.mean() == pytest.approx(100.0, rel=0.01)

    def test_overweight_tail_rejected(self):
        with pytest.raises(ValueError, match="tail"):
            JitterModel(outlier_prob=0.05, outlier_scale=30.0)

    def test_sample_and_sample_many_share_distribution(self):
        model = JitterModel(cv=0.15, outlier_prob=0.0)
        rng_a = np.random.default_rng(9)
        singles = np.array([model.sample(100.0, rng_a) for _ in range(5000)])
        rng_b = np.random.default_rng(9)
        batch = model.sample_many(100.0, 5000, rng_b)
        assert singles.mean() == pytest.approx(batch.mean(), rel=0.03)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            JitterModel(cv=-0.1)
        with pytest.raises(ValueError):
            JitterModel(outlier_prob=1.5)
        with pytest.raises(ValueError):
            JitterModel(floor_fraction=2.0)

    def test_sample_many_length_and_validation(self):
        model = JitterModel()
        rng = np.random.default_rng(0)
        assert len(model.sample_many(10.0, 0, rng)) == 0
        with pytest.raises(ValueError):
            model.sample_many(10.0, -1, rng)
