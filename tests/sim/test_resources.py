"""Unit tests for Store / Channel / Resource (repro.sim.resources)."""

import pytest

from repro.sim import Channel, Environment, Resource, SimulationError, Store


class TestStore:
    def test_put_then_get_fifo(self):
        env = Environment()
        store = Store(env)
        received = []

        def producer():
            for i in range(3):
                yield store.put(i)

        def consumer():
            for _ in range(3):
                item = yield store.get()
                received.append(item)

        env.process(producer())
        env.process(consumer())
        env.run()
        assert received == [0, 1, 2]

    def test_get_blocks_until_put(self):
        env = Environment()
        store = Store(env)
        arrival = []

        def consumer():
            item = yield store.get()
            arrival.append((env.now, item))

        def producer():
            yield env.timeout(77)
            yield store.put("late")

        env.process(consumer())
        env.process(producer())
        env.run()
        assert arrival == [(77.0, "late")]

    def test_capacity_blocks_putter(self):
        env = Environment()
        store = Store(env, capacity=1)
        times = []

        def producer():
            yield store.put("a")
            times.append(env.now)  # immediate
            yield store.put("b")
            times.append(env.now)  # blocked until a get

        def consumer():
            yield env.timeout(50)
            yield store.get()

        env.process(producer())
        env.process(consumer())
        env.run()
        assert times == [0.0, 50.0]

    def test_invalid_capacity_rejected(self):
        env = Environment()
        with pytest.raises(SimulationError):
            Store(env, capacity=0)

    def test_try_put_respects_capacity(self):
        env = Environment()
        store = Store(env, capacity=2)
        assert store.try_put(1)
        assert store.try_put(2)
        assert not store.try_put(3)
        assert store.is_full
        assert len(store) == 2

    def test_try_get(self):
        env = Environment()
        store = Store(env)
        ok, item = store.try_get()
        assert not ok and item is None
        store.try_put("x")
        ok, item = store.try_get()
        assert ok and item == "x"

    def test_try_put_hands_to_waiting_getter(self):
        env = Environment()
        store = Store(env, capacity=1)
        got = []

        def consumer():
            item = yield store.get()
            got.append(item)

        env.process(consumer())
        env.run()  # consumer now parked on get
        assert store.try_put("direct")
        env.run()
        assert got == ["direct"]
        assert len(store) == 0

    def test_items_snapshot(self):
        env = Environment()
        store = Store(env)
        store.try_put("a")
        store.try_put("b")
        assert store.items == ("a", "b")

    def test_multiple_getters_fifo(self):
        env = Environment()
        store = Store(env)
        order = []

        def consumer(tag):
            item = yield store.get()
            order.append((tag, item))

        env.process(consumer("first"))
        env.process(consumer("second"))
        env.run()
        store.try_put(1)
        store.try_put(2)
        env.run()
        assert order == [("first", 1), ("second", 2)]


class TestChannel:
    def test_latency_applied(self):
        env = Environment()
        channel = Channel(env, latency=100.0)
        deliveries = []

        def consumer():
            item = yield channel.get()
            deliveries.append((env.now, item))

        channel.put("pkt")
        env.process(consumer())
        env.run()
        assert deliveries == [(100.0, "pkt")]

    def test_fifo_across_staggered_puts(self):
        env = Environment()
        channel = Channel(env, latency=10.0)
        deliveries = []

        def producer():
            channel.put("a")
            yield env.timeout(1)
            channel.put("b")

        def consumer():
            for _ in range(2):
                item = yield channel.get()
                deliveries.append((env.now, item))

        env.process(producer())
        env.process(consumer())
        env.run()
        assert deliveries == [(10.0, "a"), (11.0, "b")]

    def test_in_flight_tracking(self):
        env = Environment()
        channel = Channel(env, latency=50.0)
        channel.put("x")
        assert channel.in_flight == 1
        env.run()
        assert channel.in_flight == 0
        assert len(channel) == 1

    def test_zero_latency_allowed(self):
        env = Environment()
        channel = Channel(env, latency=0.0)
        channel.put("now")
        got = []

        def consumer():
            got.append((yield channel.get()))

        env.process(consumer())
        env.run()
        assert got == ["now"]

    def test_negative_latency_rejected(self):
        env = Environment()
        with pytest.raises(SimulationError):
            Channel(env, latency=-1.0)


class TestResource:
    def test_grants_up_to_capacity(self):
        env = Environment()
        resource = Resource(env, capacity=2)
        granted = []

        def worker(tag, hold):
            yield resource.request()
            granted.append((tag, env.now))
            yield env.timeout(hold)
            resource.release()

        env.process(worker("a", 10))
        env.process(worker("b", 10))
        env.process(worker("c", 10))
        env.run()
        assert granted == [("a", 0.0), ("b", 0.0), ("c", 10.0)]

    def test_available_accounting(self):
        env = Environment()
        resource = Resource(env, capacity=3)
        assert resource.available == 3
        resource.request()
        assert resource.in_use == 1
        assert resource.available == 2
        resource.release()
        assert resource.in_use == 0

    def test_release_idle_rejected(self):
        env = Environment()
        resource = Resource(env)
        with pytest.raises(SimulationError):
            resource.release()

    def test_invalid_capacity_rejected(self):
        env = Environment()
        with pytest.raises(SimulationError):
            Resource(env, capacity=0)

    def test_fifo_handoff_keeps_in_use_constant(self):
        env = Environment()
        resource = Resource(env, capacity=1)
        resource.request()
        waiter = resource.request()
        assert not waiter.triggered
        resource.release()
        assert waiter.triggered
        assert resource.in_use == 1
