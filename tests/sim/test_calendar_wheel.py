"""Property tests: the bucketed time wheel ≡ a pure-heapq calendar.

The three-tier kernel replaced the single binary heap with a time
wheel + overflow heap + slab-recycled entries.  The calendar's contract
is unchanged: entries execute ordered by ``(time, priority, insertion
order)``.  These tests pin that equivalence over random operation
streams — random delays (including exact ties, bucket-boundary values
and far-future overflow times), random priorities, and callbacks that
schedule more work while the calendar drains — against a reference
implementation that is literally the pre-refactor heap.
"""

import heapq

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import NORMAL, URGENT, Environment

#: Delays chosen to stress every tier: same-tick (0.0), sub-bucket,
#: exact bucket boundaries (the wheel grain is 512 ns), dirty decimals
#: whose float sums exercise rounding, multi-bucket strides, and
#: far-future values that overflow past the wheel's ~2.1 ms span.
DELAYS = st.sampled_from(
    [
        0.0,
        0.1,
        1.5,
        8.99,
        49.69,
        511.9999999999999,
        512.0,
        512.0000000000001,
        1000.0,
        4096.0,
        123456.789,
        2_097_152.0,  # exactly the wheel span
        3_000_000.0,  # far future: overflow tier
    ]
)

PRIORITIES = st.sampled_from([URGENT, NORMAL])

#: One scheduled item: its delay, priority, and the (delay, priority)
#: pairs of the children it schedules when it executes.
ITEMS = st.tuples(
    DELAYS,
    PRIORITIES,
    st.lists(st.tuples(DELAYS, PRIORITIES), max_size=3),
)


class HeapCalendar:
    """The pre-refactor calendar: one binary heap, verbatim semantics."""

    def __init__(self) -> None:
        self.now = 0.0
        self._queue: list[tuple[float, int, int, int]] = []
        self._sequence = 0

    def push(self, delay: float, priority: int, label: int) -> None:
        self._sequence += 1
        heapq.heappush(self._queue, (self.now + delay, priority, self._sequence, label))

    def drain(self, on_execute) -> list[tuple[float, int]]:
        order: list[tuple[float, int]] = []
        while self._queue:
            when, _priority, _seq, label = heapq.heappop(self._queue)
            self.now = when
            order.append((when, label))
            on_execute(self, label)
        return order


def _run_wheel(items) -> list[tuple[float, int]]:
    env = Environment()
    order: list[tuple[float, int]] = []
    labels = iter(range(10**9))

    # Children are leaves; labels are allocated in execution order so
    # both calendars name them identically.
    def execute(label: int, children) -> None:
        order.append((env.now, label))
        for delay, priority in children:
            env.defer(execute, delay, priority, args=(next(labels), ()))

    for delay, priority, children in items:
        env.defer(execute, delay, priority, args=(next(labels), children))
    env.run()
    return order


def _run_heap(items) -> list[tuple[float, int]]:
    cal = HeapCalendar()
    labels = iter(range(10**9))
    children_of: dict[int, list[tuple[float, int]]] = {}

    def on_execute(calendar: HeapCalendar, label: int) -> None:
        for delay, priority in children_of.get(label, ()):
            child = next(labels)
            children_of[child] = []
            calendar.push(delay, priority, child)

    for delay, priority, children in items:
        label = next(labels)
        children_of[label] = list(children)
        cal.push(delay, priority, label)
    return cal.drain(on_execute)


class TestWheelEquivalence:
    @settings(max_examples=200, deadline=None)
    @given(st.lists(ITEMS, max_size=40))
    def test_execution_order_matches_pure_heapq(self, items):
        """Same stream → same (time, label) execution sequence, bitwise."""
        assert _run_wheel(items) == _run_heap(items)

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(st.tuples(st.just(0.0), PRIORITIES), min_size=2, max_size=20)
    )
    def test_same_tick_ties_preserve_insertion_order(self, items):
        """All-zero delays: URGENT before NORMAL, then insertion order."""
        wheel = _run_wheel([(d, p, []) for d, p in items])
        heap = _run_heap([(d, p, []) for d, p in items])
        assert wheel == heap
        # And the order is exactly (priority, insertion index).
        executed = [label for _, label in wheel]
        expected = sorted(
            range(len(items)), key=lambda i: (items[i][1], i)
        )
        assert executed == expected

    @settings(max_examples=50, deadline=None)
    @given(st.lists(DELAYS, min_size=1, max_size=30))
    def test_clock_lands_on_exact_float_times(self, delays):
        """Execution times are the exact scheduled floats, no drift."""
        env = Environment()
        seen: list[float] = []
        for d in delays:
            env.defer(lambda: seen.append(env.now), d)
        env.run()
        assert seen == sorted(delays)
