"""Unit tests for the discrete-event kernel (repro.sim.engine)."""

import pytest

from repro.sim import (
    NORMAL,
    URGENT,
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    SimulationError,
    Timeout,
)


class TestEvent:
    def test_new_event_is_pending(self):
        env = Environment()
        event = env.event()
        assert not event.triggered
        assert not event.processed

    def test_value_unavailable_before_trigger(self):
        env = Environment()
        event = env.event()
        with pytest.raises(SimulationError):
            _ = event.value

    def test_succeed_carries_value(self):
        env = Environment()
        event = env.event()
        event.succeed(42)
        assert event.triggered
        assert event.value == 42

    def test_double_trigger_rejected(self):
        env = Environment()
        event = env.event()
        event.succeed()
        with pytest.raises(SimulationError):
            event.succeed()
        with pytest.raises(SimulationError):
            event.fail(ValueError("x"))

    def test_fail_requires_exception(self):
        env = Environment()
        event = env.event()
        with pytest.raises(SimulationError):
            event.fail("not an exception")  # type: ignore[arg-type]

    def test_callbacks_run_on_processing(self):
        env = Environment()
        event = env.event()
        seen = []
        event.callbacks.append(lambda e: seen.append(e.value))
        event.succeed("payload")
        env.run()
        assert seen == ["payload"]
        assert event.processed

    def test_trigger_chains_state(self):
        env = Environment()
        source = env.event()
        sink = env.event()
        source.succeed(7)
        sink.trigger(source)
        assert sink.value == 7


class TestTimeout:
    def test_timeout_advances_clock(self):
        env = Environment()
        env.timeout(125.0)
        env.run()
        assert env.now == 125.0

    def test_negative_delay_rejected(self):
        env = Environment()
        with pytest.raises(SimulationError):
            Timeout(env, -1.0)

    def test_negative_delay_error_names_event_and_now(self):
        env = Environment()
        env.timeout(10.0)
        env.run()
        event = env.event()
        with pytest.raises(SimulationError) as excinfo:
            env._schedule(event, 0, -2.5)
        message = str(excinfo.value)
        assert repr(event) in message  # which event was being scheduled
        assert "delay=-2.5" in message
        assert "now=10.0" in message

    def test_timeouts_fire_in_time_order(self):
        env = Environment()
        fired = []

        def proc(delay, tag):
            yield env.timeout(delay)
            fired.append(tag)

        env.process(proc(30, "c"))
        env.process(proc(10, "a"))
        env.process(proc(20, "b"))
        env.run()
        assert fired == ["a", "b", "c"]

    def test_ties_fire_in_creation_order(self):
        env = Environment()
        fired = []

        def proc(tag):
            yield env.timeout(5)
            fired.append(tag)

        for tag in ("first", "second", "third"):
            env.process(proc(tag))
        env.run()
        assert fired == ["first", "second", "third"]


class TestProcess:
    def test_process_return_value(self):
        env = Environment()

        def body():
            yield env.timeout(1)
            return "done"

        proc = env.process(body())
        assert env.run(until=proc) == "done"

    def test_process_requires_generator(self):
        env = Environment()
        with pytest.raises(SimulationError):
            env.process(lambda: None)  # type: ignore[arg-type]

    def test_process_waits_on_another_process(self):
        env = Environment()

        def inner():
            yield env.timeout(50)
            return 99

        def outer():
            value = yield env.process(inner())
            return value + 1

        assert env.run(until=env.process(outer())) == 100
        assert env.now == 50

    def test_exception_propagates_to_waiter(self):
        env = Environment()

        def failing():
            yield env.timeout(1)
            raise ValueError("boom")

        def waiter():
            yield env.process(failing())

        with pytest.raises(ValueError, match="boom"):
            env.run(until=env.process(waiter()))

    def test_yield_non_event_fails_process(self):
        env = Environment()

        def bad():
            yield 42  # type: ignore[misc]

        proc = env.process(bad())
        with pytest.raises(SimulationError, match="expected an Event"):
            env.run(until=proc)

    def test_yield_already_processed_event_resumes_immediately(self):
        env = Environment()
        ready = env.event()
        ready.succeed("early")
        order = []

        def consumer():
            # Let the ready event be processed first.
            yield env.timeout(10)
            value = yield ready
            order.append((env.now, value))

        env.run(until=env.process(consumer()))
        assert order == [(10.0, "early")]

    def test_interrupt_raises_inside_process(self):
        env = Environment()
        log = []

        def sleeper():
            try:
                yield env.timeout(1000)
            except Interrupt as interrupt:
                log.append((env.now, interrupt.cause))

        victim = env.process(sleeper())

        def interrupter():
            yield env.timeout(42)
            victim.interrupt(cause="wakeup")

        env.process(interrupter())
        env.run()
        assert log == [(42.0, "wakeup")]

    def test_interrupt_finished_process_rejected(self):
        env = Environment()

        def quick():
            yield env.timeout(1)

        proc = env.process(quick())
        env.run()
        with pytest.raises(SimulationError):
            proc.interrupt()

    def test_is_alive(self):
        env = Environment()

        def body():
            yield env.timeout(10)

        proc = env.process(body())
        assert proc.is_alive
        env.run()
        assert not proc.is_alive


class TestCallbackTier:
    """The defer/chain fast path shares the calendar with the event tier."""

    def test_defer_runs_at_scheduled_time_with_args(self):
        env = Environment()
        seen = []
        env.defer(lambda a, b: seen.append((env.now, a, b)), 12.5, args=(1, 2))
        env.run()
        assert seen == [(12.5, 1, 2)]

    def test_defer_default_delay_is_now(self):
        env = Environment(initial_time=100.0)
        seen = []
        env.defer(lambda: seen.append(env.now))
        env.run()
        assert seen == [100.0]

    def test_negative_delay_rejected(self):
        env = Environment()
        with pytest.raises(SimulationError, match="into the past"):
            env.defer(lambda: None, -1.0)

    def test_callbacks_interleave_with_events_by_priority_then_fifo(self):
        # At one timestamp: URGENT entries (either tier) fire before
        # NORMAL ones, and within a priority insertion order rules —
        # exactly the event-tier tie-break.
        env = Environment()
        order = []

        def proc(tag):
            yield env.timeout(5)
            order.append(tag)

        env.process(proc("event-normal"))
        env.step()  # run _Initialize so the Timeout enters the calendar now
        env.defer(lambda: order.append("cb-normal"), 5.0)
        env.defer(lambda: order.append("cb-urgent"), 5.0, priority=URGENT)
        env.defer(lambda: order.append("cb-normal-2"), 5.0, priority=NORMAL)
        env.run()
        assert order == ["cb-urgent", "event-normal", "cb-normal", "cb-normal-2"]

    def test_exception_in_deferred_callback_propagates(self):
        env = Environment()

        def boom():
            raise RuntimeError("deferred failure")

        env.defer(boom, 1.0)
        with pytest.raises(RuntimeError, match="deferred failure"):
            env.run()

    def test_on_event_hook_sees_bare_callables(self):
        env = Environment()
        seen = []
        env.on_event = lambda when, item: seen.append((when, item))

        def cb():
            pass

        env.defer(cb, 3.0)
        env.timeout(4.0)
        env.run()
        assert (3.0, cb) in seen
        assert any(isinstance(item, Timeout) for _, item in seen)

    def test_defer_counts_toward_processed_events(self):
        env = Environment()
        env.defer(lambda: None)
        env.defer(lambda: None, 1.0)
        env.run()
        assert env.processed_events == 2

    def test_chain_hops_accumulate_like_sequential_timeouts(self):
        env = Environment()
        ticks = []
        env.chain(
            (0.1, lambda: ticks.append(env.now)),
            (0.2, lambda: ticks.append(env.now)),
            (0.0, lambda: ticks.append(env.now)),
        )
        env.run()
        # Bit-exact float sums, hop by hop: (0+0.1), ((0+0.1)+0.2), ...
        assert ticks == [0.1, 0.1 + 0.2, 0.1 + 0.2 + 0.0]

    def test_chain_steps_schedule_lazily(self):
        # Step k+1 must not be on the calendar until step k fired, so
        # work injected between steps at the same time still interleaves
        # in insertion order.
        env = Environment()
        order = []
        env.chain(
            (1.0, lambda: order.append("first")),
            (0.0, lambda: order.append("third")),
        )

        def racer():
            yield env.timeout(1.0)
            order.append("second")

        env.process(racer())
        env.run()
        assert order == ["first", "second", "third"]

    def test_empty_chain_is_a_no_op(self):
        env = Environment()
        env.chain()
        assert env.peek() == float("inf")

    def test_chain_exception_abandons_remaining_steps(self):
        env = Environment()
        ran = []

        def boom():
            raise ValueError("mid-chain")

        env.chain(
            (1.0, lambda: ran.append("ok")),
            (1.0, boom),
            (1.0, lambda: ran.append("never")),
        )
        with pytest.raises(ValueError, match="mid-chain"):
            env.run()
        assert ran == ["ok"]
        env.run()  # the rest of the chain is gone, not merely delayed
        assert ran == ["ok"]

    def test_add_callback_on_processed_event_rejected(self):
        env = Environment()
        event = env.event().succeed("done")
        env.run()
        with pytest.raises(SimulationError, match="already-processed"):
            event.add_callback(lambda e: None)

    def test_add_callback_runs_like_direct_append(self):
        env = Environment()
        event = env.event()
        seen = []
        event.add_callback(lambda e: seen.append(e.value))
        event.succeed(7)
        env.run()
        assert seen == [7]


class TestConditions:
    def test_all_of_waits_for_every_event(self):
        env = Environment()

        def body():
            result = yield AllOf(env, [env.timeout(10, "a"), env.timeout(30, "b")])
            return (env.now, sorted(result))

        now, values = env.run(until=env.process(body()))
        assert now == 30
        assert values == ["a", "b"]

    def test_any_of_fires_on_first(self):
        env = Environment()

        def body():
            yield AnyOf(env, [env.timeout(10, "fast"), env.timeout(500, "slow")])
            return env.now

        assert env.run(until=env.process(body())) == 10

    def test_empty_all_of_fires_immediately(self):
        env = Environment()

        def body():
            yield AllOf(env, [])
            return env.now

        assert env.run(until=env.process(body())) == 0

    def test_all_of_propagates_failure(self):
        env = Environment()

        def failing():
            yield env.timeout(5)
            raise RuntimeError("nope")

        def body():
            yield AllOf(env, [env.process(failing()), env.timeout(100)])

        with pytest.raises(RuntimeError, match="nope"):
            env.run(until=env.process(body()))


class TestEnvironmentRun:
    def test_run_until_time_stops_clock(self):
        env = Environment()

        def ticker():
            while True:
                yield env.timeout(10)

        env.process(ticker())
        env.run(until=95)
        assert env.now == 95

    def test_run_until_past_time_rejected(self):
        env = Environment(initial_time=100)
        with pytest.raises(SimulationError):
            env.run(until=50)

    def test_run_until_event_deadlock_detected(self):
        env = Environment()
        never = env.event()

        def waiter():
            yield never

        proc = env.process(waiter())
        with pytest.raises(SimulationError, match="deadlock"):
            env.run(until=proc)

    def test_step_empty_calendar_rejected(self):
        env = Environment()
        with pytest.raises(SimulationError):
            env.step()

    def test_peek_reports_next_event_time(self):
        env = Environment()
        assert env.peek() == float("inf")
        env.timeout(12.5)
        assert env.peek() == 12.5

    def test_initial_time(self):
        env = Environment(initial_time=1000.0)
        assert env.now == 1000.0
        env.timeout(5)
        env.run()
        assert env.now == 1005.0

    def test_active_process_visible_during_execution(self):
        env = Environment()
        observed = []

        def body():
            observed.append(env.active_process)
            yield env.timeout(1)

        proc = env.process(body())
        env.run()
        assert observed == [proc]
        assert env.active_process is None

    def test_run_until_time_after_calendar_drains(self):
        # Regression: the clock must land exactly on the horizon even
        # when the last event fires well before it — not stay stuck at
        # the final event's timestamp.
        env = Environment()
        env.timeout(10.0)
        env.run(until=500.0)
        assert env.now == 500.0

    def test_run_until_time_with_empty_calendar(self):
        env = Environment()
        env.run(until=42.0)
        assert env.now == 42.0

    def test_run_until_time_is_cumulative(self):
        env = Environment()
        env.timeout(3.0)
        env.run(until=100.0)
        env.run(until=250.0)
        assert env.now == 250.0

    def test_processed_events_counts_steps(self):
        env = Environment()
        env.timeout(1.0)
        env.timeout(2.0)
        before = env.processed_events
        env.run()
        assert env.processed_events == before + 2

    def test_run_until_plain_event_deadlock_detected(self):
        env = Environment()
        never = env.event()
        env.timeout(5.0)
        with pytest.raises(SimulationError, match="deadlock"):
            env.run(until=never)


class TestEdgeCases:
    def test_interrupt_while_waiting_on_processed_event(self):
        # A process yielding an already-processed event parks on an
        # internal urgent relay; interrupting it there must detach it
        # cleanly and deliver the Interrupt, not resume it twice.
        env = Environment()
        done = env.event().succeed("settled")
        env.run()
        assert done.processed

        outcomes = []

        def waiter():
            try:
                value = yield done
                outcomes.append(("value", value))
            except Interrupt as interrupt:
                outcomes.append(("interrupt", interrupt.cause))

        proc = env.process(waiter())
        # Let the process start and park on the settled-event relay.
        env.step()
        assert proc.is_alive
        proc.interrupt(cause="stop")
        env.run()
        assert outcomes == [("interrupt", "stop")]
        assert not proc.is_alive

    def test_double_interrupt_coalesces_first_cause_wins(self):
        # Regression: two interrupts issued before the victim resumes
        # used to advance the generator twice — the second delivery
        # landed wherever the generator had moved on to.  They must
        # coalesce into a single Interrupt carrying the first cause.
        env = Environment()
        outcomes = []

        def sleeper():
            try:
                yield env.timeout(1000)
            except Interrupt as interrupt:
                outcomes.append(("interrupt", env.now, interrupt.cause))
            yield env.timeout(7)
            outcomes.append(("resumed", env.now))

        victim = env.process(sleeper())

        def interrupter():
            yield env.timeout(42)
            victim.interrupt(cause="first")
            victim.interrupt(cause="second")
            victim.interrupt(cause="third")

        env.process(interrupter())
        env.run()
        assert outcomes == [("interrupt", 42.0, "first"), ("resumed", 49.0)]
        assert not victim.is_alive

    def test_interrupt_usable_again_after_delivery(self):
        # Coalescing clears once the pending interrupt is delivered: a
        # later, separate interrupt must go through.
        env = Environment()
        causes = []

        def sleeper():
            for _ in range(2):
                try:
                    yield env.timeout(1000)
                except Interrupt as interrupt:
                    causes.append(interrupt.cause)

        victim = env.process(sleeper())

        def interrupter():
            yield env.timeout(10)
            victim.interrupt(cause="one")
            yield env.timeout(10)
            victim.interrupt(cause="two")

        env.process(interrupter())
        env.run()
        assert causes == ["one", "two"]

    def test_empty_any_of_fires_immediately(self):
        env = Environment()
        results = []

        def body():
            value = yield AnyOf(env, [])
            results.append(value)

        env.process(body())
        env.run()
        assert results == [[]]
        assert env.now == 0.0

    def test_empty_all_of_and_any_of_agree(self):
        env = Environment()
        all_of = AllOf(env, [])
        any_of = AnyOf(env, [])
        assert all_of.triggered
        assert any_of.triggered
        env.run()
        assert all_of.value == []
        assert any_of.value == []
