"""The unified ``run_collective`` surface and its golden defaults.

Two contracts pinned here:

* **dispatch** — one entry point covering (op, algorithm, offload),
  with exit-with-registered-list errors and the legacy named functions
  as thin delegating wrappers;
* **bit-identity** — the host algorithms behind the new surface produce
  *exactly* the pre-redesign timelines (golden totals captured before
  ``run_collective`` existed), so the API redesign is provably
  behaviour-preserving at defaults.
"""

import pytest

import repro.collectives as collectives
from repro.collectives import run_collective
from repro.collectives.algorithms import barrier, ring_allreduce, tree_broadcast
from repro.collectives.workloads import (
    allreduce_workload,
    barrier_workload,
    bcast_workload,
)
from repro.node.cluster import Cluster
from repro.node.config import SystemConfig

DET = SystemConfig.paper_testbed(deterministic=True)

#: Golden end-to-end totals captured from the host algorithms BEFORE
#: the run_collective redesign (deterministic paper testbed).  Exact
#: equality: the refactor must not move a single event.
GOLDEN_TOTALS = {
    ("barrier", 4, None, 1): 2752.7800000000007,
    ("bcast", 4, None, 1): 2769.6700000000014,
    ("barrier", 8, "fat_tree:4", 2): 18447.41999999981,
    ("bcast", 8, "fat_tree:4", 2): 10196.46999999991,
    ("allreduce", 8, "fat_tree:4", 2): 79443.56000000122,
}

WORKLOADS = {
    "barrier": barrier_workload,
    "bcast": bcast_workload,
    "allreduce": allreduce_workload,
}


class TestGoldenDefaults:
    @pytest.mark.parametrize("key", sorted(GOLDEN_TOTALS, key=str))
    def test_host_defaults_are_bit_identical_to_pre_redesign(self, key):
        op, n_nodes, topology, iterations = key
        result = WORKLOADS[op](
            DET, n_nodes=n_nodes, topology=topology, iterations=iterations
        )
        assert result["total_ns"] == GOLDEN_TOTALS[key]
        assert result["offload"] == "host"

    def test_wrappers_delegate_without_timing_changes(self):
        # The legacy named functions go through run_collective now;
        # they must still reproduce the same golden timeline.
        assert (
            barrier(Cluster(4, config=DET), iterations=1).total_ns
            == GOLDEN_TOTALS[("barrier", 4, None, 1)]
        )
        assert (
            tree_broadcast(Cluster(4, config=DET), iterations=1).total_ns
            == GOLDEN_TOTALS[("bcast", 4, None, 1)]
        )

    def test_wrapper_equals_run_collective(self):
        via_wrapper = ring_allreduce(Cluster(4, config=DET), iterations=1)
        via_dispatch = run_collective(
            "allreduce", Cluster(4, config=DET), algorithm="ring", iterations=1
        )
        assert via_wrapper.total_ns == via_dispatch.total_ns
        assert via_dispatch.offload == "host"


class TestDispatch:
    def test_unknown_op_lists_registered(self):
        with pytest.raises(ValueError, match=r"registered: allreduce, barrier, bcast"):
            run_collective("gather", Cluster(4, config=DET))

    def test_unknown_offload(self):
        with pytest.raises(ValueError, match=r"choose 'host' or 'nic'"):
            run_collective("barrier", Cluster(4, config=DET), offload="fpga")

    def test_unknown_algorithm_lists_registered(self):
        with pytest.raises(ValueError, match="registered"):
            run_collective("allreduce", Cluster(4, config=DET), algorithm="nope")

    def test_allreduce_has_no_nic_variant(self):
        with pytest.raises(ValueError, match="no offload='nic'"):
            run_collective("allreduce", Cluster(4, config=DET), offload="nic")

    def test_nic_offload_reaches_the_offload_impl(self):
        result = run_collective("barrier", Cluster(4, config=DET), offload="nic")
        assert result.offload == "nic"

    def test_workloads_route_through_dispatch(self):
        with pytest.raises(ValueError, match="no offload='nic'"):
            allreduce_workload(DET, n_nodes=4, offload="nic")


class TestPublicSurface:
    """Pin the package's ``__all__`` so the surface changes deliberately."""

    EXPECTED = [
        "CollectiveResult",
        "barrier",
        "path_end_to_end_ns",
        "predicted_barrier_ns",
        "predicted_nic_barrier_ns",
        "predicted_nic_tree_broadcast_ns",
        "predicted_recursive_doubling_ns",
        "predicted_ring_allreduce_ns",
        "predicted_tree_broadcast_ns",
        "recursive_doubling_allreduce",
        "ring_allreduce",
        "run_collective",
        "tree_broadcast",
    ]

    def test_all_is_exactly_the_curated_surface(self):
        assert list(collectives.__all__) == self.EXPECTED

    def test_every_name_resolves(self):
        for name in collectives.__all__:
            assert hasattr(collectives, name)
