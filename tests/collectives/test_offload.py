"""NIC-resident barrier/broadcast: models, host-bypass proof, wins."""

import pytest

from repro.collectives import (
    predicted_nic_barrier_ns,
    predicted_nic_tree_broadcast_ns,
    run_collective,
)
from repro.collectives.offload import nic_barrier, nic_tree_broadcast
from repro.collectives.workloads import barrier_workload, bcast_workload
from repro.node.cluster import Cluster
from repro.node.config import SystemConfig
from repro.trace import trace_session

DET = SystemConfig.paper_testbed(deterministic=True)


def _fat_tree(config):
    import dataclasses

    from repro.network.topology import TopologySpec

    return config.evolve(
        network=dataclasses.replace(
            config.network, topology=TopologySpec.parse("fat_tree:4")
        )
    )


class TestNicBarrier:
    @pytest.mark.parametrize("n", [4, 8])
    def test_matches_model_exactly_on_uniform_fabric(self, n):
        cluster = Cluster(n, config=DET)
        result = nic_barrier(cluster, iterations=2)
        predicted = predicted_nic_barrier_ns(n, DET, iterations=2)
        # The zero-load model reproduces the event timeline exactly —
        # well inside the repo's 5% model-agreement requirement.
        assert result.total_ns == pytest.approx(predicted, rel=1e-9)

    def test_matches_model_on_routed_topology(self):
        config = _fat_tree(DET)
        cluster = Cluster(8, config=config)
        result = nic_barrier(cluster, iterations=2)
        predicted = predicted_nic_barrier_ns(
            8, config, cluster.topology, iterations=2
        )
        assert result.total_ns == pytest.approx(predicted, rel=1e-9)

    def test_beats_host_barrier(self):
        host = barrier_workload(DET, n_nodes=8, iterations=1)
        nic = barrier_workload(DET, n_nodes=8, iterations=1, offload="nic")
        assert nic["total_ns"] < host["total_ns"]

    def test_requires_one_rank_per_node(self):
        with pytest.raises(ValueError, match="one rank per node"):
            nic_barrier(Cluster(2, config=DET, processes_per_node=2))


class TestNicBroadcast:
    @pytest.mark.parametrize("n", [4, 6, 8])
    def test_matches_model_exactly(self, n):
        cluster = Cluster(n, config=DET)
        result = nic_tree_broadcast(cluster, iterations=2)
        predicted = predicted_nic_tree_broadcast_ns(n, DET, iterations=2)
        assert result.total_ns == pytest.approx(predicted, rel=1e-9)

    def test_nonzero_root_matches_model_on_topology(self):
        config = _fat_tree(DET)
        cluster = Cluster(8, config=config)
        result = nic_tree_broadcast(cluster, root=3, iterations=1)
        predicted = predicted_nic_tree_broadcast_ns(
            8, config, cluster.topology, root=3, iterations=1
        )
        assert result.total_ns == pytest.approx(predicted, rel=1e-9)

    def test_beats_host_broadcast_single_shot(self):
        host = bcast_workload(DET, n_nodes=8, iterations=1)
        nic = bcast_workload(DET, n_nodes=8, iterations=1, offload="nic")
        assert nic["total_ns"] < host["total_ns"]

    def test_root_out_of_range(self):
        with pytest.raises(ValueError, match="out of range"):
            nic_tree_broadcast(Cluster(4, config=DET), root=4)


class TestHostBypassTrace:
    """Trace-level proof: interior hops never touch the host or PCIe."""

    def test_bcast_non_root_nodes_record_zero_pcie_and_cpu_spans(self):
        with trace_session() as session:
            cluster = Cluster(4, config=DET)
            run_collective("bcast", cluster, offload="nic", iterations=2)
        spans = session.spans()
        assert spans, "traced run recorded nothing"
        root = cluster.node_for_rank(0).name
        interior = [cluster.node_for_rank(i).name for i in (1, 2, 3)]
        for name in interior:
            pcie = [
                s for s in spans
                if s.layer == "pcie" and (s.track or "").startswith(f"{name}.")
            ]
            assert pcie == [], f"{name} saw PCIe traffic: {pcie[:3]}"
            cpu = [s for s in spans if f"{name}.cpu" in (s.track or "")]
            assert cpu == [], f"{name} host CPU woke: {cpu[:3]}"
        # ... while the root paid exactly its entry post.
        root_pcie = [
            s for s in spans
            if s.layer == "pcie" and (s.track or "").startswith(f"{root}.")
        ]
        assert root_pcie, "root must still PIO-post the payload"

    def test_nic_barrier_records_zero_cq_poll_spans(self):
        # Hosts learn the result via the notification DMA, never by
        # polling a CQ: no llp_prog span may appear anywhere.
        with trace_session() as session:
            run_collective(
                "barrier", Cluster(4, config=DET), offload="nic", iterations=2
            )
        spans = session.spans()
        assert [s for s in spans if s.name == "llp_prog"] == []
        # The host path records them — that's the span class being elided.
        with trace_session() as session:
            run_collective("barrier", Cluster(4, config=DET), iterations=2)
        assert [s for s in session.spans() if s.name == "llp_prog"]

    def test_saving_is_attributed_to_elided_host_spans(self):
        # The nic win per rank-hop ≈ the host per-message CPU+PCIe time
        # the offload elides; check the total saving is explained by
        # the span classes that disappeared (within 25% slop for
        # overlap effects).
        with trace_session() as session:
            host = run_collective("barrier", Cluster(8, config=DET), iterations=1)
        host_spans = session.spans()
        with trace_session() as session:
            nic = run_collective(
                "barrier", Cluster(8, config=DET), offload="nic", iterations=1
            )
        nic_spans = session.spans()

        def pcie_ns(spans):
            return sum(s.duration_ns for s in spans if s.layer == "pcie")

        assert nic.total_ns < host.total_ns
        assert pcie_ns(nic_spans) < pcie_ns(host_spans) / 2
        host_cpu = sum(1 for s in host_spans if ".cpu" in (s.track or ""))
        nic_cpu = sum(1 for s in nic_spans if ".cpu" in (s.track or ""))
        assert nic_cpu < host_cpu / 2
