"""Collective algorithms vs their analytic models on the uniform fabric."""

import pytest

from repro.collectives import (
    barrier,
    predicted_barrier_ns,
    predicted_recursive_doubling_ns,
    predicted_ring_allreduce_ns,
    predicted_tree_broadcast_ns,
    recursive_doubling_allreduce,
    ring_allreduce,
    tree_broadcast,
)
from repro.node.cluster import Cluster
from repro.node.config import SystemConfig

DET = SystemConfig.paper_testbed(deterministic=True)


class TestRingAllreduce:
    def test_matches_model_at_4_and_8_ranks(self):
        for n in (4, 8):
            result = ring_allreduce(Cluster(n, config=DET), iterations=2)
            predicted = predicted_ring_allreduce_ns(n, DET, iterations=2)
            assert result.total_ns == pytest.approx(predicted, rel=0.02)
            assert result.steps == 2 * (n - 1)
            assert result.algorithm == "ring_allreduce"

    def test_result_properties(self):
        result = ring_allreduce(Cluster(4, config=DET), iterations=5)
        assert result.time_per_iteration_ns == pytest.approx(result.total_ns / 5)
        assert result.time_per_step_ns == pytest.approx(
            result.time_per_iteration_ns / 6
        )

    def test_validation(self):
        cluster = Cluster(4, config=DET)
        with pytest.raises(ValueError):
            ring_allreduce(cluster, iterations=0)
        with pytest.raises(ValueError):
            ring_allreduce(cluster, reduce_compute_ns=-1.0)


class TestRecursiveDoubling:
    def test_matches_model(self):
        result = recursive_doubling_allreduce(Cluster(4, config=DET))
        predicted = predicted_recursive_doubling_ns(4, DET)
        assert result.total_ns == pytest.approx(predicted, rel=0.02)
        assert result.steps == 2  # log2(4) rounds

    def test_beats_ring_on_latency_at_8_ranks(self):
        # 3 rounds of log-algorithm vs 14 lockstep ring steps.
        rd = recursive_doubling_allreduce(Cluster(8, config=DET))
        ring = ring_allreduce(Cluster(8, config=DET), iterations=1)
        assert rd.total_ns < ring.total_ns / 3

    def test_requires_power_of_two(self):
        with pytest.raises(ValueError):
            recursive_doubling_allreduce(Cluster(6, config=DET))
        with pytest.raises(ValueError):
            predicted_recursive_doubling_ns(6, DET)


class TestTreeBroadcast:
    @pytest.mark.parametrize("n", [2, 4, 8, 16])
    def test_single_shot_matches_model(self, n):
        result = tree_broadcast(Cluster(n, config=DET), iterations=1)
        predicted = predicted_tree_broadcast_ns(n, DET)
        assert result.total_ns == pytest.approx(predicted, rel=0.02)

    def test_back_to_back_broadcasts_pipeline(self):
        # Leaves repost receives while the root still sends, so N
        # iterations finish in less than N single-shot latencies.
        single = predicted_tree_broadcast_ns(8, DET)
        result = tree_broadcast(Cluster(8, config=DET), iterations=4)
        assert result.total_ns < 4 * single

    def test_nonzero_root(self):
        result = tree_broadcast(Cluster(4, config=DET), root=2)
        predicted = predicted_tree_broadcast_ns(4, DET, root=2)
        assert result.total_ns == pytest.approx(predicted, rel=0.02)

    def test_root_out_of_range(self):
        with pytest.raises(ValueError):
            tree_broadcast(Cluster(4, config=DET), root=4)


class TestBarrier:
    @pytest.mark.parametrize("n", [4, 8])
    def test_matches_model(self, n):
        result = barrier(Cluster(n, config=DET))
        predicted = predicted_barrier_ns(n, DET)
        assert result.total_ns == pytest.approx(predicted, rel=0.02)
        assert result.steps == (n - 1).bit_length()

    def test_non_power_of_two_rank_counts_work(self):
        result = barrier(Cluster(5, config=DET))
        assert result.steps == 3
        assert result.total_ns == pytest.approx(
            predicted_barrier_ns(5, DET), rel=0.02
        )
