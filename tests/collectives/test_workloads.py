"""Registry wrappers: collectives as sweepable campaign workloads."""

import pytest

from repro.campaign import CampaignSpec, SweepAxis, run_campaign
from repro.campaign.workloads import get_workload
from repro.collectives.workloads import (
    allreduce_workload,
    barrier_workload,
    bcast_workload,
)
from repro.node.config import SystemConfig

DET = SystemConfig.paper_testbed(deterministic=True)


class TestRegistry:
    @pytest.mark.parametrize("name", ["allreduce", "bcast", "barrier"])
    def test_collectives_are_registered(self, name):
        assert callable(get_workload(name))


class TestAllreduceWorkload:
    def test_ring_on_point_to_point_fabric(self):
        record = allreduce_workload(DET, algorithm="ring", n_nodes=4)
        assert record["algorithm"] == "ring_allreduce"
        assert record["steps"] == 6
        assert record["model_error"] < 0.02

    def test_topology_parameter_builds_routed_fabric(self):
        record = allreduce_workload(DET, n_nodes=4, topology="fat_tree:4")
        assert record["model_error"] < 0.02

    def test_recursive_doubling(self):
        record = allreduce_workload(DET, algorithm="recursive_doubling", n_nodes=4)
        assert record["algorithm"] == "recursive_doubling_allreduce"
        assert record["model_error"] < 0.02

    def test_unknown_algorithm(self):
        with pytest.raises(ValueError):
            allreduce_workload(DET, algorithm="butterfly")


class TestOtherWorkloads:
    def test_bcast(self):
        record = bcast_workload(DET, n_nodes=4)
        assert record["model_error"] < 0.02
        assert record["root"] == 0

    def test_barrier(self):
        record = barrier_workload(DET, n_nodes=4, topology="ring")
        assert record["model_error"] < 0.02


class TestNodeCountSweep:
    def test_n_nodes_is_a_sweep_axis(self):
        """The ISSUE's scale-out sweep: node count as a declarative axis."""
        spec = CampaignSpec(
            name="scaling",
            workload="allreduce",
            base_config=DET,
            axes=(SweepAxis("n_nodes", (2, 4)),),
            params={"iterations": 1},
        )
        result = run_campaign(spec)
        assert not result.failures
        totals = {
            r.params["n_nodes"]: r.measurements["total_ns"]
            for r in result.records
        }
        # 2 ranks -> 2 steps, 4 ranks -> 6 steps: ~3x the time.
        assert totals[4] / totals[2] == pytest.approx(3.0, rel=0.05)
