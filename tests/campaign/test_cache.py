"""Unit tests for the on-disk result cache (repro.campaign.cache)."""

from repro.campaign import ResultCache, code_version
from repro.campaign.cache import point_cache_key
from repro.node import SystemConfig


class TestResultCache:
    def test_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        cache.put("k1", {"status": "ok", "measurements": {"x": 1.5}})
        assert cache.get("k1") == {"status": "ok", "measurements": {"x": 1.5}}

    def test_missing_key_returns_none(self, tmp_path):
        assert ResultCache(tmp_path).get("nope") is None

    def test_torn_write_returns_none(self, tmp_path):
        cache = ResultCache(tmp_path)
        (tmp_path / "torn.json").write_text('{"status": "ok", "meas')
        assert cache.get("torn") is None

    def test_put_leaves_no_temp_files(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("k", {"a": 1})
        leftovers = [p.name for p in tmp_path.iterdir() if p.suffix == ".tmp"]
        assert leftovers == []

    def test_len_counts_entries(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert len(cache) == 0
        cache.put("a", {})
        cache.put("b", {})
        assert len(cache) == 2

    def test_overwrite_replaces(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("k", {"v": 1})
        cache.put("k", {"v": 2})
        assert cache.get("k") == {"v": 2}
        assert len(cache) == 1

    def test_creates_directory(self, tmp_path):
        target = tmp_path / "deep" / "nested"
        ResultCache(target)
        assert target.is_dir()


class TestCodeVersion:
    def test_is_short_hex(self):
        version = code_version()
        assert len(version) == 16
        int(version, 16)

    def test_stable_within_process(self):
        assert code_version() == code_version()


class TestPointCacheKey:
    def _key(self, **kwargs):
        defaults = dict(
            workload="selftest",
            config=SystemConfig.paper_testbed(),
            params={"value": 1.0},
            seed=2019,
        )
        defaults.update(kwargs)
        return point_cache_key(**defaults)

    def test_identical_inputs_identical_keys(self):
        assert self._key() == self._key()

    def test_seed_changes_key(self):
        assert self._key() != self._key(seed=2020)

    def test_params_change_key(self):
        assert self._key() != self._key(params={"value": 2.0})

    def test_workload_changes_key(self):
        assert self._key() != self._key(workload="put_bw")

    def test_config_changes_key(self):
        evolved = SystemConfig.paper_testbed().evolve(seed=77)
        assert self._key() != self._key(config=evolved)
