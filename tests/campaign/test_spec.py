"""Unit tests for campaign specs (repro.campaign.spec)."""

import pytest

from repro.campaign import CampaignSpec, SweepAxis, apply_config_overrides
from repro.node import SystemConfig


class TestSweepAxis:
    def test_dotted_name_targets_config(self):
        assert SweepAxis("nic.txq_depth", (1, 2)).is_config

    def test_top_level_config_field_targets_config(self):
        assert SweepAxis("nic", (None,)).is_config

    def test_plain_name_targets_param(self):
        assert not SweepAxis("payload_bytes", (8, 64)).is_config

    def test_explicit_target_overrides_auto(self):
        assert SweepAxis("weird.name", (1,), target="param").is_config is False
        assert SweepAxis("iterations", (1,), target="config").is_config is True

    def test_empty_values_rejected(self):
        with pytest.raises(ValueError, match="no values"):
            SweepAxis("x", ())

    def test_unknown_target_rejected(self):
        with pytest.raises(ValueError, match="target"):
            SweepAxis("x", (1,), target="both")

    def test_values_coerced_to_tuple(self):
        assert SweepAxis("x", [1, 2]).values == (1, 2)


class TestApplyConfigOverrides:
    def test_nested_override_applied(self):
        config = SystemConfig.paper_testbed()
        updated = apply_config_overrides(config, {"nic.txq_depth": 3})
        assert updated.nic.txq_depth == 3

    def test_original_untouched(self):
        config = SystemConfig.paper_testbed()
        before = config.nic.txq_depth
        apply_config_overrides(config, {"nic.txq_depth": before + 1})
        assert config.nic.txq_depth == before

    def test_multiple_overrides(self):
        config = SystemConfig.paper_testbed()
        updated = apply_config_overrides(
            config, {"nic.txq_depth": 5, "network.switch_count": 3}
        )
        assert updated.nic.txq_depth == 5
        assert updated.network.switch_count == 3

    def test_unknown_field_rejected(self):
        config = SystemConfig.paper_testbed()
        with pytest.raises(AttributeError, match="no field"):
            apply_config_overrides(config, {"nic.not_a_field": 1})


class TestCampaignSpec:
    def _spec(self, **kwargs):
        defaults = dict(
            name="t",
            workload="selftest",
            base_config=SystemConfig.paper_testbed(),
        )
        defaults.update(kwargs)
        return CampaignSpec(**defaults)

    def test_point_count_is_product_of_axes_and_seeds(self):
        spec = self._spec(
            axes=(
                SweepAxis("nic.txq_depth", (1, 2, 4)),
                SweepAxis("payload_bytes", (8, 64)),
            ),
            seeds=(1, 2),
        )
        assert spec.n_points == 12
        assert len(spec.points()) == 12

    def test_indices_are_sequential(self):
        spec = self._spec(axes=(SweepAxis("value", (1.0, 2.0)),), seeds=(1, 2))
        assert [p.index for p in spec.points()] == [0, 1, 2, 3]

    def test_seeds_vary_fastest(self):
        spec = self._spec(axes=(SweepAxis("value", (1.0, 2.0)),), seeds=(7, 8))
        points = spec.points()
        assert [(p.params["value"], p.seed) for p in points] == [
            (1.0, 7),
            (1.0, 8),
            (2.0, 7),
            (2.0, 8),
        ]

    def test_config_axis_resolved_into_point_config(self):
        spec = self._spec(axes=(SweepAxis("nic.txq_depth", (2, 9)),))
        depths = [p.config.nic.txq_depth for p in spec.points()]
        assert depths == [2, 9]
        overrides = [p.config_overrides for p in spec.points()]
        assert overrides == [{"nic.txq_depth": 2}, {"nic.txq_depth": 9}]

    def test_point_config_carries_its_seed(self):
        spec = self._spec(seeds=(11, 12))
        assert [p.config.seed for p in spec.points()] == [11, 12]

    def test_fixed_params_merge_with_param_axes(self):
        spec = self._spec(
            axes=(SweepAxis("value", (3.0,)),), params={"fail": False}
        )
        (point,) = spec.points()
        assert point.params == {"fail": False, "value": 3.0}

    def test_duplicate_axes_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            self._spec(axes=(SweepAxis("x", (1,)), SweepAxis("x", (2,))))

    def test_empty_seeds_rejected(self):
        with pytest.raises(ValueError, match="seed"):
            self._spec(seeds=())

    def test_no_axes_yields_one_point_per_seed(self):
        spec = self._spec(seeds=(1, 2, 3))
        assert spec.n_points == 3
