"""Unit tests for the workload registry (repro.campaign.workloads)."""

import pytest

from repro.campaign import (
    CampaignSpec,
    get_workload,
    register_workload,
    run_campaign,
    workload_names,
)
from repro.campaign.workloads import (
    _REGISTRY,
    put_oneway_latency_workload,
    selftest_workload,
    whatif_speedup_workload,
)
from repro.core.components import ComponentTimes
from repro.core.whatif import Metric, WhatIfAnalysis
from repro.node import SystemConfig


class TestRegistry:
    def test_builtin_names_registered(self):
        names = workload_names()
        for name in ("put_bw", "am_lat", "osu_mr", "osu_latency",
                     "multicore_put_bw", "uct_bandwidth", "replication",
                     "put_oneway_latency", "whatif_speedup", "selftest"):
            assert name in names

    def test_unknown_name_rejected_with_catalogue(self):
        with pytest.raises(KeyError, match="registered"):
            get_workload("nope")

    def test_lazy_entries_resolve_and_memoize(self):
        workload = get_workload("selftest")
        assert callable(workload)
        assert _REGISTRY["selftest"] is workload
        assert get_workload("selftest") is workload

    def test_register_custom_workload_runs_in_campaign(self):
        def doubler(config, x=1.0):
            return {"doubled": 2 * x}

        register_workload("test_doubler", doubler)
        try:
            spec = CampaignSpec(
                name="custom",
                workload="test_doubler",
                base_config=SystemConfig.paper_testbed(),
                params={"x": 21.0},
            )
            result = run_campaign(spec)
            assert result.values("doubled") == [42.0]
        finally:
            del _REGISTRY["test_doubler"]


class TestSelftestWorkload:
    def test_returns_value_and_seed(self):
        config = SystemConfig.paper_testbed(seed=123)
        assert selftest_workload(config, value=2.5) == {
            "value": 2.5,
            "seed": 123,
        }

    def test_fail_raises(self):
        with pytest.raises(ValueError):
            selftest_workload(SystemConfig.paper_testbed(), fail=True)


class TestPutOnewayLatencyWorkload:
    def test_inline_payload_takes_pio_path(self):
        config = SystemConfig.paper_testbed(deterministic=True)
        result = put_oneway_latency_workload(config, payload_bytes=8)
        assert result["path"] == "pio_inline"
        assert result["one_way_latency_ns"] > 0

    def test_large_payload_takes_dma_path_and_costs_more(self):
        config = SystemConfig.paper_testbed(deterministic=True)
        small = put_oneway_latency_workload(config, payload_bytes=8)
        large = put_oneway_latency_workload(config, payload_bytes=1024)
        assert large["path"] == "doorbell_dma"
        assert large["one_way_latency_ns"] > small["one_way_latency_ns"]


class TestWhatifSpeedupWorkload:
    def test_matches_direct_analysis(self):
        config = SystemConfig.paper_testbed()
        analysis = WhatIfAnalysis(ComponentTimes.paper())
        expected = analysis.speedup(
            Metric.INJECTION, analysis.injection_components()["LLP"], 0.3
        )
        result = whatif_speedup_workload(
            config, metric="injection", component="LLP", reduction=0.3
        )
        assert result["speedup"] == expected

    def test_unknown_source_rejected(self):
        with pytest.raises(ValueError, match="source"):
            whatif_speedup_workload(
                SystemConfig.paper_testbed(), source="measured"
            )
