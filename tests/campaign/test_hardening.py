"""Campaign hardening: per-point timeouts, retries, resumability."""

import pytest

from repro.campaign import CampaignSpec, SweepAxis, run_campaign
from repro.campaign.cache import ResultCache, point_cache_key
from repro.campaign.runner import PointTimeout, _run_with_timeout
from repro.campaign.spec import CampaignSpec as Spec


class TestRunWithTimeout:
    def test_fast_function_passes_through(self):
        assert _run_with_timeout(lambda: 42, timeout_s=5.0) == 42

    def test_none_timeout_runs_unguarded(self):
        assert _run_with_timeout(lambda: "ok", timeout_s=None) == "ok"

    def test_slow_function_raises_point_timeout(self):
        import time

        with pytest.raises(PointTimeout, match="timeout_s"):
            _run_with_timeout(lambda: time.sleep(5.0), timeout_s=0.05)

    def test_timer_disarmed_after_success(self):
        import signal
        import time

        _run_with_timeout(lambda: None, timeout_s=0.05)
        time.sleep(0.08)  # were the itimer still armed, SIGALRM would kill us
        assert signal.getitimer(signal.ITIMER_REAL) == (0.0, 0.0)


class TestSpecValidation:
    def test_timeout_must_be_positive(self):
        with pytest.raises(ValueError, match="timeout_s"):
            Spec(name="x", workload="selftest", timeout_s=0.0)

    def test_retries_nonnegative(self):
        with pytest.raises(ValueError, match="retries"):
            Spec(name="x", workload="selftest", retries=-1)

    def test_backoff_nonnegative(self):
        with pytest.raises(ValueError, match="retry_backoff_s"):
            Spec(name="x", workload="selftest", retry_backoff_s=-1.0)


class TestTimeouts:
    def test_timed_out_point_becomes_error_record_and_campaign_continues(self):
        spec = CampaignSpec(
            name="timeouts",
            workload="selftest",
            axes=(SweepAxis("sleep_s", (0.0, 30.0, 0.0)),),
            timeout_s=0.2,
        )
        result = run_campaign(spec)
        assert len(result.records) == 3
        ok = [r for r in result.records if r.ok]
        failed = [r for r in result.records if not r.ok]
        assert len(ok) == 2 and len(failed) == 1
        record = failed[0]
        assert record.timeout
        assert record.error_type == "PointTimeout"
        assert record.params["sleep_s"] == 30.0
        # The fast points are untouched by the watchdog.
        assert all(not r.timeout for r in ok)

    def test_timeout_works_in_pool_workers(self):
        spec = CampaignSpec(
            name="timeouts-pool",
            workload="selftest",
            axes=(SweepAxis("sleep_s", (0.0, 30.0)),),
            timeout_s=0.2,
        )
        result = run_campaign(spec, jobs=2)
        assert len(result.failures) == 1
        assert result.failures[0].timeout


class TestRetries:
    def test_deterministic_failure_consumes_all_attempts(self):
        spec = CampaignSpec(
            name="retries",
            workload="selftest",
            params={"fail": True},
            retries=2,
        )
        result = run_campaign(spec)
        record = result.records[0]
        assert not record.ok
        assert record.attempts == 3  # initial + 2 retries

    def test_success_uses_one_attempt(self):
        spec = CampaignSpec(name="one-shot", workload="selftest", retries=5)
        result = run_campaign(spec)
        assert result.records[0].attempts == 1
        assert result.records[0].ok


class TestResumability:
    def test_workers_write_cache_point_by_point(self, tmp_path):
        # A campaign where one point fails still banks the successful
        # points in the cache — rerunning recomputes only the failure.
        spec = CampaignSpec(
            name="resume",
            workload="selftest",
            axes=(SweepAxis("fail", (False, True)),),
        )
        first = run_campaign(spec, cache_dir=tmp_path)
        assert len(first.ok_records) == 1
        assert len(ResultCache(tmp_path)) == 1  # only the success banked
        second = run_campaign(spec, cache_dir=tmp_path)
        assert second.cache_hits == 1
        hit = [r for r in second.records if r.cache_hit]
        assert hit[0].params["fail"] is False

    def test_cache_entry_exists_even_if_a_later_point_would_crash(self, tmp_path):
        # Simulate the resumability contract directly: after the first
        # point executes, its record is already on disk (worker-side
        # put), not deferred to campaign end.
        from repro.campaign.runner import _execute_point, _point_payload
        from repro.node.config import SystemConfig

        spec = CampaignSpec(name="partial", workload="selftest")
        point = spec.points()[0]
        key = point_cache_key(
            point.workload, point.config, point.params, point.seed
        )
        _execute_point(_point_payload(spec, point, key, tmp_path))
        assert ResultCache(tmp_path).get(key) is not None

    def test_records_round_trip_new_fields(self, tmp_path):
        spec = CampaignSpec(name="fields", workload="selftest", retries=1)
        result = run_campaign(spec, cache_dir=tmp_path)
        again = run_campaign(spec, cache_dir=tmp_path)
        record = again.records[0]
        assert record.cache_hit
        assert record.attempts == 1
        assert record.timeout is False
