"""Integration tests for campaign execution (repro.campaign.runner).

Covers the PR's acceptance criteria directly: parallel execution is
byte-identical to serial, re-runs are served from the cache, and a
crashing point becomes an error record instead of aborting the sweep.
"""

import pytest

from repro.campaign import CampaignSpec, ResultCache, SweepAxis, run_campaign
from repro.node import SystemConfig


def _sim_spec() -> CampaignSpec:
    """A small but real sweep: actual simulations, config + param axes."""
    return CampaignSpec(
        name="runner-sim",
        workload="put_oneway_latency",
        base_config=SystemConfig.paper_testbed(deterministic=True),
        axes=(
            SweepAxis("payload_bytes", (8, 256)),
            SweepAxis("nic.txq_depth", (2, 16)),
        ),
        seeds=(2019, 2020),
    )


def _selftest_spec(**kwargs) -> CampaignSpec:
    defaults = dict(
        name="runner-selftest",
        workload="selftest",
        base_config=SystemConfig.paper_testbed(),
        axes=(SweepAxis("value", (1.0, 2.0, 3.0)),),
    )
    defaults.update(kwargs)
    return CampaignSpec(**defaults)


class TestDeterminism:
    def test_parallel_matches_serial_byte_for_byte(self):
        serial = run_campaign(_sim_spec(), jobs=1)
        parallel = run_campaign(_sim_spec(), jobs=4)
        assert not serial.failures
        assert serial.measurements_json() == parallel.measurements_json()

    def test_records_ordered_by_index(self):
        result = run_campaign(_sim_spec(), jobs=4)
        assert [r.index for r in result.records] == list(range(8))

    def test_rows_pair_axis_with_measurement(self):
        result = run_campaign(_selftest_spec())
        assert result.rows("value", "value") == [
            (1.0, 1.0),
            (2.0, 2.0),
            (3.0, 3.0),
        ]

    def test_seed_reaches_the_workload(self):
        result = run_campaign(_selftest_spec(seeds=(5, 6)))
        assert result.rows("seed", "seed") == [(5, 5), (6, 6)] * 3


class TestCaching:
    def test_second_run_fully_cached_and_identical(self, tmp_path):
        cache_dir = tmp_path / "cache"
        first = run_campaign(_sim_spec(), jobs=4, cache_dir=cache_dir)
        second = run_campaign(_sim_spec(), jobs=1, cache_dir=cache_dir)
        assert first.cache_hit_rate == 0.0
        # Acceptance: the second invocation is >= 90% cached (here 100%)
        # and measurement-identical to the first.
        assert second.cache_hit_rate >= 0.9
        assert second.measurements_json() == first.measurements_json()

    def test_cache_entries_written_per_ok_point(self, tmp_path):
        cache_dir = tmp_path / "cache"
        result = run_campaign(_selftest_spec(), cache_dir=cache_dir)
        assert len(ResultCache(cache_dir)) == len(result.ok_records)

    def test_cached_records_flagged_with_zero_duration(self, tmp_path):
        cache_dir = tmp_path / "cache"
        run_campaign(_selftest_spec(), cache_dir=cache_dir)
        second = run_campaign(_selftest_spec(), cache_dir=cache_dir)
        assert all(r.cache_hit for r in second.records)
        assert all(r.duration_s == 0.0 for r in second.records)

    def test_no_cache_dir_disables_caching(self):
        result = run_campaign(_selftest_spec())
        again = run_campaign(_selftest_spec())
        assert result.cache_hits == 0
        assert again.cache_hits == 0

    def test_different_params_not_served_from_cache(self, tmp_path):
        cache_dir = tmp_path / "cache"
        run_campaign(_selftest_spec(), cache_dir=cache_dir)
        changed = _selftest_spec(axes=(SweepAxis("value", (9.0,)),))
        result = run_campaign(changed, cache_dir=cache_dir)
        assert result.cache_hits == 0
        assert result.values("value") == [9.0]


class TestWorkStealingDispatch:
    """jobs>1 feeds pending points through the work-stealing executor."""

    def test_more_jobs_than_points_still_completes(self):
        spec = _selftest_spec(axes=(SweepAxis("value", (1.0, 2.0)),))
        result = run_campaign(spec, jobs=8)
        assert result.values("value") == [1.0, 2.0]
        assert not result.failures

    def test_executor_preserves_point_order_and_isolates_failures(self):
        from repro.campaign.runner import _execute_point, _point_payload
        from repro.serve.executor import WorkStealingExecutor

        spec = CampaignSpec(
            name="steal-order",
            workload="selftest",
            base_config=SystemConfig.paper_testbed(),
            axes=(SweepAxis("fail", (False, True, False)),),
        )
        payloads = [
            _point_payload(spec, point, key=f"key{point.index}", cache_dir=None)
            for point in spec.points()
        ]
        with WorkStealingExecutor(_execute_point, jobs=2) as executor:
            outcomes = executor.map(payloads)
        assert [outcome["index"] for outcome in outcomes] == [0, 1, 2]
        assert [outcome["status"] for outcome in outcomes] == ["ok", "error", "ok"]

    def test_partial_cache_interleaves_with_chunked_misses(self, tmp_path):
        cache_dir = tmp_path / "cache"
        primed = CampaignSpec(
            name="runner-sim",
            workload="put_oneway_latency",
            base_config=SystemConfig.paper_testbed(deterministic=True),
            axes=(
                SweepAxis("payload_bytes", (8,)),
                SweepAxis("nic.txq_depth", (2, 16)),
            ),
            seeds=(2019, 2020),
        )
        run_campaign(primed, jobs=1, cache_dir=cache_dir)
        full = run_campaign(_sim_spec(), jobs=4, cache_dir=cache_dir)
        assert full.cache_hits == 4
        assert [r.index for r in full.records] == list(range(8))
        assert full.measurements_json() == run_campaign(
            _sim_spec(), jobs=1
        ).measurements_json()


class TestTracedCampaigns:
    def _traced_spec(self, **kwargs) -> CampaignSpec:
        defaults = dict(
            name="runner-traced",
            workload="am_lat",
            base_config=SystemConfig.paper_testbed(deterministic=True),
            params={"iterations": 20, "warmup": 5},
            trace=True,
        )
        defaults.update(kwargs)
        return CampaignSpec(**defaults)

    def test_trace_summary_attached_to_records(self):
        result = run_campaign(self._traced_spec())
        (record,) = result.records
        assert record.ok
        assert record.trace is not None
        assert record.trace["spans"] > 0
        assert "llp" in record.trace["per_layer"]
        assert "[traced:" in result.render()

    def test_untraced_records_carry_no_trace(self):
        result = run_campaign(self._traced_spec(trace=False))
        (record,) = result.records
        assert record.trace is None
        assert "[traced:" not in result.render()

    def test_traced_campaign_bypasses_cache(self, tmp_path):
        cache_dir = tmp_path / "cache"
        # Prime the cache untraced, then re-run traced: the cached
        # record has no trace, so it must not be served.
        run_campaign(self._traced_spec(trace=False), cache_dir=cache_dir)
        result = run_campaign(self._traced_spec(), cache_dir=cache_dir)
        assert result.cache_hits == 0
        assert result.records[0].trace is not None

    def test_trace_round_trips_through_record_json(self):
        from repro.campaign.records import RunRecord

        result = run_campaign(self._traced_spec())
        payload = result.records[0].to_dict()
        rebuilt = RunRecord.from_dict(payload)
        assert rebuilt.trace == result.records[0].trace


class TestFailureIsolation:
    def _failing_spec(self, **kwargs) -> CampaignSpec:
        # 2 seeds × fail in (False, True): two OK points, two crashes.
        defaults = dict(
            name="runner-failures",
            workload="selftest",
            base_config=SystemConfig.paper_testbed(),
            axes=(SweepAxis("fail", (False, True)),),
            seeds=(2019, 2020),
        )
        defaults.update(kwargs)
        return CampaignSpec(**defaults)

    def test_worker_exception_recorded_not_raised(self):
        result = run_campaign(self._failing_spec(), jobs=4)
        assert len(result.ok_records) == 2
        assert len(result.failures) == 2
        for failure in result.failures:
            assert failure.error_type == "ValueError"
            assert "asked to fail" in failure.error
            assert "ValueError" in failure.traceback
            assert failure.measurements == {}

    def test_failures_not_cached_and_retried(self, tmp_path):
        cache_dir = tmp_path / "cache"
        first = run_campaign(self._failing_spec(), cache_dir=cache_dir)
        assert len(ResultCache(cache_dir)) == len(first.ok_records)
        second = run_campaign(self._failing_spec(), cache_dir=cache_dir)
        # OK points hit the cache; the crashed points re-execute.
        assert second.cache_hits == 2
        assert len(second.failures) == 2
        assert not any(failure.cache_hit for failure in second.failures)

    def test_render_mentions_the_error(self):
        rendered = run_campaign(self._failing_spec()).render()
        assert "ValueError" in rendered
        assert "failed=2" in rendered


class TestValidation:
    def test_jobs_below_one_rejected(self):
        with pytest.raises(ValueError, match="jobs"):
            run_campaign(_selftest_spec(), jobs=0)

    def test_unknown_workload_fails_points_not_runner(self):
        spec = CampaignSpec(
            name="missing",
            workload="no_such_workload",
            base_config=SystemConfig.paper_testbed(),
        )
        result = run_campaign(spec)
        (record,) = result.records
        assert not record.ok
        assert record.error_type == "KeyError"
