"""The curated public surface of the ``repro`` package.

Everything in ``repro.__all__`` must import and be the supported way
in; nothing private (underscore names, submodule objects imported as a
side effect) may masquerade as public API.
"""

import importlib
import inspect

import repro


class TestAll:
    def test_every_public_name_resolves(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.__all__ lists missing {name!r}"

    def test_star_import_matches_all(self):
        namespace: dict = {}
        exec("from repro import *", namespace)
        exported = {k for k in namespace if not k.startswith("__")}
        assert exported == set(repro.__all__) - {"__version__"}

    def test_nothing_private_leaks(self):
        for name in repro.__all__:
            assert not name.startswith("_") or name == "__version__"

    def test_no_module_objects_exported(self):
        for name in repro.__all__:
            if name == "__version__":
                continue
            assert not inspect.ismodule(getattr(repro, name)), (
                f"{name} is a module, not an API object"
            )

    def test_headline_names_present(self):
        # The ISSUE's required surface.
        for name in (
            "Experiment",
            "SystemConfig",
            "CampaignSpec",
            "FaultPlan",
            "trace_session",
        ):
            assert name in repro.__all__

    def test_all_is_sorted_and_unique(self):
        assert list(repro.__all__) == sorted(set(repro.__all__))


class TestEntryPoints:
    def test_experiment_is_the_api_class(self):
        from repro.api import Experiment

        assert repro.Experiment is Experiment

    def test_builder_reachable_from_systemconfig(self):
        builder = repro.SystemConfig.builder()
        assert isinstance(builder, repro.SystemConfigBuilder)

    def test_legacy_entry_points_still_import(self):
        # Old composition points stay importable (thin shims / direct).
        for module, attr in (
            ("repro.node.testbed", "Testbed"),
            ("repro.node.cluster", "Cluster"),
            ("repro.apps", "run_ring_allreduce"),
            ("repro.bench", "run_am_lat"),
        ):
            assert hasattr(importlib.import_module(module), attr)
