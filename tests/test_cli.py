"""Tests for the command-line interface (repro.cli)."""

import io
import json

import pytest

from repro.cli import main


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestStaticCommands:
    def test_table1(self):
        code, text = run_cli("table1")
        assert code == 0
        assert "PIO copy (64 bytes)" in text
        assert "175.42" in text

    @pytest.mark.parametrize(
        "figure,needle",
        [
            ("fig4", "pio_copy"),
            ("fig8", "llp_post"),
            ("fig10", "wire"),
            ("fig11", "MPI_Isend"),
            ("fig12", "post: 76.23%"),
            ("fig13", "1387.02"),
            ("fig14", "RX progress"),
            ("fig15", "Network: 27.60%"),
            ("fig16", "target: 66.20%"),
        ],
    )
    def test_breakdowns(self, figure, needle):
        code, text = run_cli("breakdown", figure)
        assert code == 0
        assert needle in text

    def test_validate(self):
        code, text = run_cli("validate")
        assert code == 0
        assert text.count("[OK]") == 4

    def test_insights(self):
        code, text = run_cli("insights")
        assert code == 0
        assert text.count("[HOLDS]") == 4


class TestWhatIf:
    def test_single_point(self):
        code, text = run_cli(
            "whatif", "--metric", "injection", "--component", "PIO",
            "--reduction", "0.84",
        )
        assert code == 0
        assert "29.88%" in text

    def test_panels(self):
        code, text = run_cli("whatif", "--panels")
        assert code == 0
        assert "Figure 17a" in text and "Figure 17d" in text

    def test_unknown_component_lists_options(self):
        code, text = run_cli("whatif", "--component", "FluxCapacitor")
        assert code == 2
        assert "Integrated NIC" in text

    def test_missing_component_lists_options(self):
        code, text = run_cli("whatif")
        assert code == 2
        assert "available components" in text


class TestBench:
    def test_am_lat_deterministic(self):
        code, text = run_cli("bench", "am_lat", "--deterministic")
        assert code == 0
        assert "observed latency" in text

    def test_put_bw(self):
        code, text = run_cli("bench", "put_bw", "--deterministic")
        assert code == 0
        assert "injection overhead" in text

    def test_unknown_workload_exits_2_and_lists_options(self):
        code, text = run_cli("bench", "nonsense")
        assert code == 2
        assert "unknown workload 'nonsense'" in text
        assert "am_lat" in text and "put_bw" in text


class TestTraceCommand:
    def test_writes_valid_chrome_trace(self, tmp_path):
        import json

        out_path = tmp_path / "trace.json"
        code, text = run_cli(
            "trace", "am_lat", "--out", str(out_path), "--deterministic",
            "--param", "iterations=20", "--param", "warmup=5",
        )
        assert code == 0
        assert "critical path of message" in text
        assert "llp_post" in text and "rc_to_mem" in text

        payload = json.loads(out_path.read_text())
        assert payload["displayTimeUnit"] == "ns"
        phases = {e["ph"] for e in payload["traceEvents"]}
        assert {"M", "X", "i"} <= phases

    def test_timeline_flag_renders_rows(self, tmp_path):
        code, text = run_cli(
            "trace", "am_lat", "--out", str(tmp_path / "t.json"),
            "--deterministic", "--param", "iterations=20",
            "--param", "warmup=5", "--timeline", "10",
        )
        assert code == 0
        assert "timeline:" in text
        assert "spans not shown" in text

    def test_unknown_workload_exits_2_and_lists_options(self, tmp_path):
        code, text = run_cli(
            "trace", "nonsense", "--out", str(tmp_path / "t.json")
        )
        assert code == 2
        assert "unknown workload 'nonsense'" in text
        assert "am_lat" in text

    def test_bad_param_exits_2(self, tmp_path):
        code, text = run_cli(
            "trace", "am_lat", "--out", str(tmp_path / "t.json"),
            "--param", "garbage",
        )
        assert code == 2


class TestParser:
    def test_no_command_exits(self):
        with pytest.raises(SystemExit):
            run_cli()

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            run_cli("frobnicate")


class TestRank:
    def test_latency_ranking_puts_integrated_nic_first(self):
        code, text = run_cli("rank", "--reduction", "0.5")
        assert code == 0
        first = text.splitlines()[1]
        assert "Integrated NIC" in first

    def test_injection_ranking_puts_llp_first(self):
        code, text = run_cli("rank", "--metric", "injection")
        assert code == 0
        first = text.splitlines()[1]
        assert first.strip().startswith("LLP")


class TestFaultsCommand:
    def test_bare_invocation_lists_sites_kinds_actions(self):
        code, text = run_cli("faults")
        assert code == 0
        assert "network.wire" in text
        assert "pcie.dllp" in text
        assert "rule kinds:" in text and "nth" in text
        assert "rule actions:" in text and "corrupt" in text

    def test_valid_plan_validates_and_prints_rules(self):
        code, text = run_cli("faults", "examples/faults/lossy_wire.json")
        assert code == 0
        assert "valid" in text
        assert "network.wire drop" in text

    def test_invalid_plan_exits_2(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text('{"rules": [{"site": "no.such.site"}]}')
        code, text = run_cli("faults", str(bad))
        assert code == 2
        assert "invalid fault plan" in text

    def test_missing_plan_file_exits_2(self, tmp_path):
        code, text = run_cli("faults", str(tmp_path / "absent.json"))
        assert code == 2
        assert "cannot read fault plan" in text


class TestBenchWithFaults:
    def test_put_bw_prints_recovery_stats(self):
        code, text = run_cli(
            "bench", "put_bw", "--deterministic",
            "--faults", "examples/faults/lossy_wire.json",
        )
        assert code == 0
        assert "faults: injected=" in text
        assert "retransmits=" in text
        assert "exhausted=0" in text

    def test_bad_plan_exits_2_before_running(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("not json at all")
        code, text = run_cli(
            "bench", "am_lat", "--deterministic", "--faults", str(bad)
        )
        assert code == 2
        assert "invalid fault plan" in text


class TestCampaignWithFaults:
    def test_faults_with_replications_rejected(self):
        code, text = run_cli(
            "campaign", "--replications", "2",
            "--faults", "examples/faults/lossy_wire.json",
        )
        assert code == 2
        assert "--faults is not supported with --replications" in text


class TestUniformFlags:
    """The shared run conventions: --param/--faults/--trace/--jobs/
    --cache-dir spelled identically on bench, campaign, trace, faults."""

    def test_bench_param_workload_kwargs(self):
        code, text = run_cli(
            "bench", "am_lat", "--deterministic",
            "--param", "iterations=50", "--param", "warmup=5",
        )
        assert code == 0
        assert "observed latency" in text

    def test_bench_param_dotted_config_override(self):
        code, text = run_cli(
            "bench", "am_lat", "--deterministic",
            "--param", "iterations=50", "--param", "warmup=5",
            "--param", "network.switch_latency_ns=508.0",
        )
        assert code == 0
        # +400 ns of switch latency lands directly on the one-way path.
        latency = float(text.split("observed latency")[1].split("ns")[0])
        assert latency > 1400.0

    def test_bench_bad_param_exits_2(self):
        code, text = run_cli("bench", "am_lat", "--param", "garbage")
        assert code == 2
        assert "bad --param" in text

    def test_bench_unknown_workload_kwarg_exits_2(self):
        code, text = run_cli(
            "bench", "am_lat", "--deterministic", "--param", "bogus=1"
        )
        assert code == 2
        assert "bad --param for workload 'am_lat'" in text

    def test_bench_unknown_config_path_exits_2(self):
        code, text = run_cli(
            "bench", "am_lat", "--param", "nic.bogus=1"
        )
        assert code == 2
        assert "bad --param" in text

    def test_bench_trace_writes_chrome_trace(self, tmp_path):
        out_path = tmp_path / "bench.json"
        code, text = run_cli(
            "bench", "am_lat", "--deterministic",
            "--param", "iterations=30", "--param", "warmup=5",
            "--trace", str(out_path),
        )
        assert code == 0
        assert f"-> {out_path}" in text
        assert out_path.exists()

    def test_trace_accepts_jobs_and_cache_dir(self, tmp_path):
        code, _ = run_cli(
            "trace", "am_lat", "--out", str(tmp_path / "t.json"),
            "--deterministic", "--param", "iterations=20",
            "--param", "warmup=5", "--jobs", "2",
            "--cache-dir", str(tmp_path),
        )
        assert code == 0

    def test_trace_faults_flag(self, tmp_path):
        code, text = run_cli(
            "trace", "put_bw", "--out", str(tmp_path / "t.json"),
            "--deterministic", "--param", "n_messages=50",
            "--param", "warmup=10",
            "--faults", "examples/faults/lossy_wire.json",
        )
        assert code == 0
        assert "trace:" in text

    def test_bench_sweep_value_of_wrong_type_exits_2(self):
        code, text = run_cli(
            "bench", "put_bw", "--sweep", "nic.txq_depth=oops"
        )
        assert code == 2
        assert "campaign error" in text

    def test_campaign_rejects_non_dotted_param(self):
        code, text = run_cli("campaign", "--param", "bogus=1")
        assert code == 2
        assert "dotted config paths" in text

    def test_campaign_trace_with_replications_rejected(self):
        code, text = run_cli("campaign", "--replications", "2", "--trace")
        assert code == 2
        assert "--trace is not supported with --replications" in text

    def test_jobs_below_one_exits_2_everywhere(self):
        for argv in (
            ("bench", "am_lat", "--jobs", "0"),
            ("campaign", "--jobs", "0"),
            ("trace", "am_lat", "--jobs", "0"),
        ):
            code, text = run_cli(*argv)
            assert code == 2, argv
            assert "--jobs must be >= 1" in text


class TestFaultsRunsWorkload:
    def test_workload_under_plan_prints_recovery_stats(self):
        code, text = run_cli(
            "faults", "examples/faults/lossy_wire.json",
            "--workload", "put_bw", "--deterministic",
        )
        assert code == 0
        assert "valid" in text  # plan still validated and printed
        assert "faults: injected=" in text

    def test_plan_via_faults_flag(self):
        code, text = run_cli(
            "faults", "--faults", "examples/faults/lossy_wire.json"
        )
        assert code == 0
        assert "valid" in text

    def test_conflicting_plan_sources_exit_2(self, tmp_path):
        other = tmp_path / "other.json"
        other.write_text("{}")
        code, text = run_cli(
            "faults", "examples/faults/lossy_wire.json",
            "--faults", str(other),
        )
        assert code == 2
        assert "not both" in text

    def test_workload_without_plan_exits_2(self):
        code, text = run_cli("faults", "--workload", "put_bw")
        assert code == 2
        assert "needs a fault plan" in text

    def test_unknown_workload_exits_2_and_lists_options(self):
        code, text = run_cli(
            "faults", "examples/faults/lossy_wire.json",
            "--workload", "nonsense",
        )
        assert code == 2
        assert "unknown workload 'nonsense'" in text


class TestBenchCollectives:
    def test_allreduce_with_topology_via_params(self):
        code, text = run_cli(
            "bench", "allreduce", "--deterministic",
            "--param", "n_nodes=4", "--param", "topology=ring",
        )
        assert code == 0
        assert "ok=1" in text and "n_nodes=4" in text


class TestServeCommand:
    def _queries(self, tmp_path, payload):
        path = tmp_path / "queries.json"
        path.write_text(json.dumps(payload))
        return str(path)

    def test_bare_array_simulates_and_reports(self, tmp_path):
        queries = self._queries(
            tmp_path,
            [{"workload": "put_oneway_latency", "params": {"payload_bytes": 64}}],
        )
        code, text = run_cli(
            "serve", queries, "--store", str(tmp_path / "store"), "--deterministic"
        )
        assert code == 0
        assert "[simulation] put_oneway_latency(payload_bytes=64)" in text
        assert "serve: 1 queries" in text

    def test_fit_then_surrogate_then_store(self, tmp_path):
        queries = self._queries(
            tmp_path,
            {
                "fit": [
                    {
                        "workload": "put_oneway_latency",
                        "axes": {"payload_bytes": [1024, 4096]},
                    }
                ],
                "queries": [
                    {"workload": "put_oneway_latency", "params": {"payload_bytes": 1024}},
                    {"workload": "put_oneway_latency", "params": {"payload_bytes": 2048}},
                ],
            },
        )
        store = str(tmp_path / "store")
        code, text = run_cli(
            "serve", queries, "--store", store, "--deterministic",
            "--verify-fraction", "0",
        )
        assert code == 0
        assert "fit: " in text
        assert "[store]" in text
        assert "[surrogate]" in text

    def test_out_file_carries_answers_and_stats(self, tmp_path):
        queries = self._queries(
            tmp_path,
            [{"workload": "put_oneway_latency", "params": {"payload_bytes": 64}}],
        )
        out_path = tmp_path / "answers.json"
        code, _ = run_cli(
            "serve", queries, "--store", str(tmp_path / "store"),
            "--deterministic", "--out", str(out_path),
        )
        assert code == 0
        document = json.loads(out_path.read_text())
        (answer,) = document["answers"]
        assert answer["source"] == "simulation"
        assert "duration_s" not in answer
        assert document["stats"]["queries"] == 1

    def test_failing_workload_reports_and_exits_nonzero(self, tmp_path):
        queries = self._queries(
            tmp_path, [{"workload": "selftest", "params": {"fail": True}}]
        )
        code, text = run_cli(
            "serve", queries, "--store", str(tmp_path / "store")
        )
        assert code == 1
        assert "[error] selftest(fail=True)" in text

    def test_missing_queries_file_reports(self, tmp_path):
        code, text = run_cli(
            "serve", str(tmp_path / "absent.json"),
            "--store", str(tmp_path / "store"),
        )
        assert code == 2
        assert "cannot read queries file" in text

    def test_gc_evicts_stale_entries(self, tmp_path, monkeypatch):
        import repro.serve.store as store_module
        from repro.serve.store import ResultStore

        store_dir = tmp_path / "store"
        store = ResultStore(store_dir)
        monkeypatch.setattr(store_module, "code_version", lambda: "0" * 16)
        store.put("stale", {"v": 1})
        monkeypatch.undo()
        store.put("live", {"v": 2})

        code, text = run_cli("serve", "--gc", "--store", str(store_dir))
        assert code == 0
        assert "kept 1, evicted 1" in text
        assert "bytes reclaimed" in text
        assert ResultStore(store_dir).get("live") == {"v": 2}

    def test_queries_required_without_gc(self, tmp_path):
        code, text = run_cli("serve", "--store", str(tmp_path / "store"))
        assert code == 2
        assert "required unless --gc" in text

    def test_malformed_entry_reports(self, tmp_path):
        queries = self._queries(tmp_path, [{"params": {}}])
        code, text = run_cli(
            "serve", queries, "--store", str(tmp_path / "store")
        )
        assert code == 2
        assert "bad queries file" in text

    def test_unknown_workload_lists_registry(self, tmp_path):
        queries = self._queries(tmp_path, [{"workload": "no_such_workload"}])
        code, text = run_cli(
            "serve", queries, "--store", str(tmp_path / "store")
        )
        assert code == 2
        assert "unknown workload 'no_such_workload'" in text
        assert "put_oneway_latency" in text  # the registered list is shown

    def test_dotted_param_overrides_base_config(self, tmp_path):
        queries = self._queries(
            tmp_path,
            [{"workload": "put_oneway_latency", "params": {"payload_bytes": 64}}],
        )
        code, text = run_cli(
            "serve", queries, "--store", str(tmp_path / "store"),
            "--deterministic", "--param", "network.switch_count=3",
        )
        assert code == 0
        assert "[simulation]" in text


class TestAnalyzeCommand:
    def _record(self, tmp_path):
        path = tmp_path / "trace.json"
        code, _ = run_cli(
            "trace", "barrier", "--param", "n_nodes=4",
            "--deterministic", "--out", str(path),
        )
        assert code == 0
        return str(path)

    def test_latency_tolerance_is_the_default_analysis(self, tmp_path):
        trace = self._record(tmp_path)
        code, text = run_cli("analyze", trace)
        assert code == 0
        assert "critical path" in text
        assert "slack" in text
        for component in ("host", "wire", "switch", "pcie", "rc_to_mem"):
            assert component in text

    def test_critical_path_analysis(self, tmp_path):
        trace = self._record(tmp_path)
        code, text = run_cli("analyze", trace, "--what", "critical-path")
        assert code == 0
        assert "rc_to_mem" in text and "wire" in text

    def test_msg_id_selects_one_message(self, tmp_path):
        trace = self._record(tmp_path)
        code, text = run_cli(
            "analyze", trace, "--what", "critical-path", "--msg-id", "1"
        )
        assert code == 0
        assert "message 1" in text

    def test_recovery_analysis_counts_events(self, tmp_path):
        trace = self._record(tmp_path)
        code, text = run_cli("analyze", trace, "--what", "recovery")
        assert code == 0
        assert "recovery events: 0" in text

    def test_unknown_analysis_exits_2_with_registered_list(self, tmp_path):
        trace = self._record(tmp_path)
        code, text = run_cli("analyze", trace, "--what", "frobnicate")
        assert code == 2
        assert "registered: latency-tolerance, critical-path, recovery" in text

    def test_missing_trace_file_exits_2(self, tmp_path):
        code, text = run_cli("analyze", str(tmp_path / "nope.json"))
        assert code == 2
        assert "cannot read trace file" in text

    def test_non_trace_json_exits_2(self, tmp_path):
        bogus = tmp_path / "bogus.json"
        bogus.write_text('{"hello": 1}')
        code, text = run_cli("analyze", str(bogus))
        assert code == 2
        assert "not a repro trace export" in text
