"""Unit tests for the §6 insights (repro.core.insights)."""

import pytest

from repro.core.components import ComponentTimes
from repro.core.insights import (
    all_insights,
    insight1_post_dominates_injection,
    insight2_no_category_dominates_latency,
    insight3_target_dominates_on_node,
    insight4_hlp_dominates_progress,
)

PAPER = ComponentTimes.paper()


class TestPaperSystem:
    def test_all_four_insights_hold(self):
        insights = all_insights(PAPER)
        assert len(insights) == 4
        assert all(insight.holds for insight in insights)

    def test_insight1_evidence(self):
        insight = insight1_post_dominates_injection(PAPER)
        assert insight.evidence["post_percent"] == pytest.approx(76.23, abs=0.01)

    def test_insight2_evidence(self):
        insight = insight2_no_category_dominates_latency(PAPER)
        assert insight.evidence["network_percent"] == pytest.approx(27.60, abs=0.01)

    def test_insight3_evidence(self):
        insight = insight3_target_dominates_on_node(PAPER)
        assert insight.evidence["target_percent"] == pytest.approx(66.20, abs=0.01)

    def test_insight4_rx_tx_ratio_matches_paper(self):
        # §6: "The progress of a receive operation is 4.78× higher than
        # that of a send operation."
        insight = insight4_hlp_dominates_progress(PAPER)
        assert insight.evidence["rx_over_tx_ratio"] == pytest.approx(4.78, abs=0.02)

    def test_str_rendering(self):
        assert "HOLDS" in str(insight1_post_dominates_injection(PAPER))


class TestCounterexamples:
    """Insights must *fail* on systems built to violate them — the
    checks are real predicates, not rubber stamps."""

    def test_insight1_fails_with_huge_progress_cost(self):
        slow_progress = ComponentTimes(post_prog=2000.0)
        assert not insight1_post_dominates_injection(slow_progress).holds

    def test_insight2_fails_on_network_dominated_system(self):
        long_haul = ComponentTimes(wire=100000.0)
        assert not insight2_no_category_dominates_latency(long_haul).holds

    def test_insight3_fails_with_free_target_io(self):
        integrated = ComponentTimes(
            rc_to_mem_8b=1.0,
            pcie=1.0,
            mpich_recv_callback=0.0,
            ucp_recv_callback=0.0,
            mpich_after_progress=0.0,
        )
        assert not insight3_target_dominates_on_node(integrated).holds

    def test_insight4_fails_when_llp_dominates_progress(self):
        llp_heavy = ComponentTimes(
            mpich_recv_callback=1.0,
            ucp_recv_callback=1.0,
            mpich_after_progress=1.0,
        )
        assert not insight4_hlp_dominates_progress(llp_heavy).holds
