"""Unit tests for the figure breakdowns (repro.core.breakdown).

Every assertion against a percentage is the number printed in the
paper's figure, to the paper's rounding.
"""

import pytest

from repro.core.breakdown import (
    Breakdown,
    fig4_llp_post,
    fig8_injection_llp,
    fig10_latency_llp,
    fig11_hlp,
    fig12_overall_injection,
    fig13_end_to_end,
    fig14_hlp_vs_llp,
    fig15_categories,
    fig16_on_node,
)
from repro.core.components import ComponentTimes

PAPER = ComponentTimes.paper()


class TestBreakdownContainer:
    def test_percentages_sum_to_100(self):
        breakdown = Breakdown.build("t", {"a": 30.0, "b": 70.0})
        assert sum(breakdown.percentages().values()) == pytest.approx(100.0)

    def test_value_and_percent_lookup(self):
        breakdown = Breakdown.build("t", {"a": 25.0, "b": 75.0})
        assert breakdown.value("a") == 25.0
        assert breakdown.percent("a") == 25.0

    def test_unknown_label_raises(self):
        with pytest.raises(KeyError):
            Breakdown.build("t", {"a": 1.0}).value("zzz")

    def test_negative_part_rejected(self):
        with pytest.raises(ValueError):
            Breakdown.build("t", {"a": -1.0})

    def test_zero_total_percentages(self):
        breakdown = Breakdown.build("t", {"a": 0.0})
        assert breakdown.percent("a") == 0.0

    def test_as_rows_order(self):
        breakdown = Breakdown.build("t", {"x": 1.0, "y": 3.0})
        assert [row[0] for row in breakdown.as_rows()] == ["x", "y"]


class TestFig4:
    def test_paper_percentages(self):
        percentages = fig4_llp_post(PAPER).percentages()
        assert percentages["md_setup"] == pytest.approx(15.84, abs=0.01)
        assert percentages["barrier_md"] == pytest.approx(9.88, abs=0.01)
        assert percentages["barrier_dbc"] == pytest.approx(12.01, abs=0.01)
        # Paper prints 53.79/8.49; Table-1-derived values give 53.73/8.55
        # (documented rounding inconsistency in the original).
        assert percentages["pio_copy"] == pytest.approx(53.79, abs=0.1)
        assert percentages["other"] == pytest.approx(8.49, abs=0.1)

    def test_total_is_llp_post(self):
        assert fig4_llp_post(PAPER).total_ns == pytest.approx(175.42)


class TestFig8:
    def test_figure_variant_matches_printed_percentages(self):
        percentages = fig8_injection_llp(PAPER, "figure").percentages()
        assert percentages["llp_post"] == pytest.approx(61.18, abs=0.02)
        assert percentages["llp_prog"] == pytest.approx(21.49, abs=0.02)
        assert percentages["misc"] == pytest.approx(17.33, abs=0.02)

    def test_model_variant_matches_eq1_total(self):
        breakdown = fig8_injection_llp(PAPER, "model")
        assert breakdown.total_ns == pytest.approx(295.73)

    def test_unknown_variant_rejected(self):
        with pytest.raises(ValueError):
            fig8_injection_llp(PAPER, "bogus")


class TestFig10:
    def test_paper_percentages(self):
        percentages = fig10_latency_llp(PAPER).percentages()
        assert percentages["llp_post"] == pytest.approx(16.33, abs=0.01)
        assert percentages["tx_pcie"] == pytest.approx(12.80, abs=0.01)
        assert percentages["wire"] == pytest.approx(25.58, abs=0.01)
        assert percentages["switch"] == pytest.approx(10.05, abs=0.01)
        assert percentages["rx_pcie"] == pytest.approx(12.80, abs=0.01)
        assert percentages["rc_to_mem"] == pytest.approx(22.43, abs=0.01)


class TestFig11:
    def test_isend_split(self):
        percentages = fig11_hlp(PAPER)["mpi_isend"].percentages()
        assert percentages["ucp"] == pytest.approx(8.24, abs=0.02)
        assert percentages["mpich"] == pytest.approx(91.76, abs=0.02)

    def test_rx_wait_split(self):
        percentages = fig11_hlp(PAPER)["rx_mpi_wait"].percentages()
        assert percentages["ucp"] == pytest.approx(33.91, abs=0.01)
        assert percentages["mpich"] == pytest.approx(66.09, abs=0.01)


class TestFig12:
    def test_paper_percentages(self):
        percentages = fig12_overall_injection(PAPER).percentages()
        assert percentages["misc"] == pytest.approx(1.20, abs=0.01)
        assert percentages["post_prog"] == pytest.approx(22.58, abs=0.01)
        assert percentages["post"] == pytest.approx(76.23, abs=0.01)


class TestFig13:
    def test_component_nanoseconds(self):
        breakdown = fig13_end_to_end(PAPER)
        assert breakdown.value("hlp_post") == pytest.approx(26.56)
        assert breakdown.value("wire") == pytest.approx(274.81)
        assert breakdown.value("hlp_rx_prog") == pytest.approx(224.66)
        assert breakdown.total_ns == pytest.approx(1387.02)

    def test_paper_percentages(self):
        percentages = fig13_end_to_end(PAPER).percentages()
        expected = {
            "hlp_post": 1.91,
            "llp_post": 12.65,
            "tx_pcie": 9.91,
            "wire": 19.81,
            "switch": 7.79,
            "rx_pcie": 9.91,
            "rc_to_mem": 17.37,
            "llp_prog": 4.44,
            "hlp_rx_prog": 16.20,
        }
        for label, value in expected.items():
            assert percentages[label] == pytest.approx(value, abs=0.01), label


class TestFig14:
    def test_initiation_split(self):
        percentages = fig14_hlp_vs_llp(PAPER)["initiation"].percentages()
        assert percentages["llp"] == pytest.approx(86.85, abs=0.01)
        assert percentages["hlp"] == pytest.approx(13.15, abs=0.01)

    def test_tx_progress_split(self):
        percentages = fig14_hlp_vs_llp(PAPER)["tx_progress"].percentages()
        assert percentages["llp"] == pytest.approx(1.61, abs=0.05)
        assert percentages["hlp"] == pytest.approx(98.39, abs=0.05)

    def test_rx_progress_split(self):
        percentages = fig14_hlp_vs_llp(PAPER)["rx_progress"].percentages()
        assert percentages["llp"] == pytest.approx(21.53, abs=0.01)
        assert percentages["hlp"] == pytest.approx(78.47, abs=0.01)


class TestFig15:
    def test_category_split(self):
        percentages = fig15_categories(PAPER)["top"].percentages()
        assert percentages["CPU"] == pytest.approx(35.20, abs=0.01)
        assert percentages["I/O"] == pytest.approx(37.20, abs=0.01)
        assert percentages["Network"] == pytest.approx(27.60, abs=0.01)

    def test_cpu_sub_split(self):
        percentages = fig15_categories(PAPER)["cpu"].percentages()
        assert percentages["llp"] == pytest.approx(48.55, abs=0.01)
        assert percentages["hlp"] == pytest.approx(51.45, abs=0.01)

    def test_io_sub_split(self):
        percentages = fig15_categories(PAPER)["io"].percentages()
        assert percentages["rc_to_mem"] == pytest.approx(46.70, abs=0.01)
        assert percentages["pcie"] == pytest.approx(53.30, abs=0.01)

    def test_network_sub_split(self):
        percentages = fig15_categories(PAPER)["network"].percentages()
        assert percentages["wire"] == pytest.approx(71.79, abs=0.01)
        assert percentages["switch"] == pytest.approx(28.21, abs=0.01)

    def test_categories_cover_the_full_latency(self):
        parts = fig15_categories(PAPER)
        assert parts["top"].total_ns == pytest.approx(1387.02)


class TestFig16:
    def test_initiator_target_split(self):
        percentages = fig16_on_node(PAPER)["top"].percentages()
        assert percentages["initiator"] == pytest.approx(33.80, abs=0.01)
        assert percentages["target"] == pytest.approx(66.20, abs=0.01)

    def test_initiator_split(self):
        percentages = fig16_on_node(PAPER)["initiator"].percentages()
        assert percentages["cpu"] == pytest.approx(59.50, abs=0.01)
        assert percentages["io"] == pytest.approx(40.50, abs=0.01)

    def test_target_split(self):
        percentages = fig16_on_node(PAPER)["target"].percentages()
        assert percentages["cpu"] == pytest.approx(43.07, abs=0.01)
        assert percentages["io"] == pytest.approx(56.93, abs=0.01)

    def test_target_io_split(self):
        percentages = fig16_on_node(PAPER)["target_io"].percentages()
        assert percentages["rc_to_mem"] == pytest.approx(63.67, abs=0.01)
        assert percentages["pcie"] == pytest.approx(36.33, abs=0.01)

    def test_on_node_total_is_cpu_plus_io(self):
        parts = fig16_on_node(PAPER)
        # CPU (488.27) + I/O (515.94) of Figure 15.
        assert parts["top"].total_ns == pytest.approx(1004.21)
