"""Unit tests for the what-if engine (repro.core.whatif) — Figure 17 / §7."""

import pytest

from repro.core.components import ComponentTimes
from repro.core.whatif import FIG17_REDUCTIONS, Metric, WhatIfAnalysis

PAPER = ComponentTimes.paper()
ANALYSIS = WhatIfAnalysis(PAPER)


class TestTotals:
    def test_injection_total(self):
        assert ANALYSIS.total(Metric.INJECTION) == pytest.approx(264.97)

    def test_latency_total(self):
        assert ANALYSIS.total(Metric.LATENCY) == pytest.approx(1387.02)


class TestPublishedClaims:
    """Every quantitative claim of §7, re-derived."""

    def test_hlp_20pct_injection(self):
        # "a 20% reduction in overhead in the HLP can speedup injection
        # by up to 6.44%".
        hlp = ANALYSIS.injection_components()["HLP"]
        assert ANALYSIS.speedup(Metric.INJECTION, hlp, 0.20) == pytest.approx(
            0.0644, abs=0.0005
        )

    def test_llp_20pct_injection(self):
        # "that in the LLP can do so by up to 13.33%".
        llp = ANALYSIS.injection_components()["LLP"]
        assert ANALYSIS.speedup(Metric.INJECTION, llp, 0.20) == pytest.approx(
            0.1333, abs=0.0005
        )

    def test_pio_84pct_injection_over_25pct(self):
        # "overall injection can improve by more than 25%" at PIO→15 ns.
        pio = ANALYSIS.injection_components()["PIO"]
        assert ANALYSIS.speedup(Metric.INJECTION, pio, 0.84) > 0.25

    def test_pio_84pct_latency_over_5pct(self):
        pio = ANALYSIS.latency_cpu_components()["PIO"]
        assert ANALYSIS.speedup(Metric.LATENCY, pio, 0.84) > 0.05

    def test_integrated_nic_50pct_latency_over_15pct(self):
        # §7.1: "over a 15% improvement in overall latency even with a
        # modest 50% reduction in I/O time".
        io = ANALYSIS.latency_io_components()["Integrated NIC"]
        assert ANALYSIS.speedup(Metric.LATENCY, io, 0.50) > 0.15

    def test_switch_72pct_latency_about_5_5pct(self):
        # §7.2: a reduction to 30 ns (72%) ⇒ ~5.45% speedup.
        switch = ANALYSIS.latency_network_components()["Switch"]
        assert ANALYSIS.speedup(Metric.LATENCY, switch, 0.722) == pytest.approx(
            0.0545, abs=0.005
        )

    def test_software_20pct_latency_under_5pct(self):
        # §7.1: 20% software reduction ⇒ <5% latency speedup for both
        # HLP and LLP upper bounds.
        for component in ("HLP", "LLP"):
            value = ANALYSIS.latency_cpu_components()[component]
            assert ANALYSIS.speedup(Metric.LATENCY, value, 0.20) < 0.05


class TestPanels:
    def test_fig17a_line_set(self):
        panel = ANALYSIS.figure17a()
        assert set(panel) == {
            "HLP", "LLP", "LLP_post", "PIO", "HLP_tx_prog", "HLP_post", "LLP_tx_prog",
        }
        for points in panel.values():
            assert [x for x, _ in points] == list(FIG17_REDUCTIONS)

    def test_fig17b_line_set(self):
        assert set(ANALYSIS.figure17b()) == {
            "HLP", "LLP", "HLP_rx_prog", "LLP_post", "PIO", "HLP_post", "LLP_prog",
        }

    def test_fig17c_line_set(self):
        assert set(ANALYSIS.figure17c()) == {"Integrated NIC", "PCIe", "RC-to-MEM"}

    def test_fig17d_line_set(self):
        assert set(ANALYSIS.figure17d()) == {"Wire", "Switch"}

    def test_fig17a_max_speedup_under_60pct(self):
        # The paper's y-axis tops out at 60%: LLP at 90% is the biggest.
        panel = ANALYSIS.figure17a()
        peak = max(y for points in panel.values() for _, y in points)
        assert 0.55 < peak < 0.60

    def test_lines_are_linear_in_reduction(self):
        panel = ANALYSIS.figure17b()
        for points in panel.values():
            slopes = [y / x for x, y in points]
            assert max(slopes) - min(slopes) < 1e-12

    def test_aggregate_lines_dominate_constituents(self):
        panel = ANALYSIS.figure17a()
        for i in range(len(FIG17_REDUCTIONS)):
            assert panel["HLP"][i][1] >= panel["HLP_post"][i][1]
            assert panel["LLP"][i][1] >= panel["LLP_post"][i][1]
            assert panel["LLP_post"][i][1] >= panel["PIO"][i][1]


class TestSpeedupMath:
    def test_zero_reduction_zero_speedup(self):
        assert ANALYSIS.speedup(Metric.LATENCY, 100.0, 0.0) == 0.0

    def test_full_reduction_of_total_is_100pct(self):
        total = ANALYSIS.total(Metric.LATENCY)
        assert ANALYSIS.speedup(Metric.LATENCY, total, 1.0) == pytest.approx(1.0)

    def test_out_of_range_reduction_rejected(self):
        with pytest.raises(ValueError):
            ANALYSIS.speedup(Metric.LATENCY, 100.0, 1.5)
        with pytest.raises(ValueError):
            ANALYSIS.speedup(Metric.LATENCY, 100.0, -0.1)

    def test_component_exceeding_total_rejected(self):
        with pytest.raises(ValueError):
            ANALYSIS.speedup(Metric.INJECTION, 1e6, 0.5)

    def test_multiplicative_definition_larger(self):
        fractional = ANALYSIS.speedup(Metric.LATENCY, 500.0, 0.5)
        multiplicative = ANALYSIS.multiplicative_speedup(Metric.LATENCY, 500.0, 0.5)
        assert multiplicative > fractional

    def test_multiplicative_rejects_total_removal(self):
        total = ANALYSIS.total(Metric.LATENCY)
        with pytest.raises(ValueError):
            ANALYSIS.multiplicative_speedup(Metric.LATENCY, total, 1.0)


class TestCombinedSpeedup:
    def test_matches_sum_of_individual_speedups(self):
        t = PAPER
        combined = ANALYSIS.combined_speedup(
            Metric.LATENCY,
            {
                "pio": (t.pio_copy, 0.84),
                "io": (2 * t.pcie + t.rc_to_mem_8b, 0.5),
                "switch": (t.switch, 1.0),
            },
        )
        individual = (
            ANALYSIS.speedup(Metric.LATENCY, t.pio_copy, 0.84)
            + ANALYSIS.speedup(Metric.LATENCY, 2 * t.pcie + t.rc_to_mem_8b, 0.5)
            + ANALYSIS.speedup(Metric.LATENCY, t.switch, 1.0)
        )
        assert combined == pytest.approx(individual)

    def test_whatif_example_scenario(self):
        # The examples/whatif_analysis.py combined scenario: 34.3%.
        t = PAPER
        combined = ANALYSIS.combined_speedup(
            Metric.LATENCY,
            {
                "pio": (t.pio_copy - 15.0, 1.0),
                "pcie": (2 * (t.pcie - 20.0), 1.0),
                "rc": (t.rc_to_mem_8b - 80.0, 1.0),
            },
        )
        assert combined == pytest.approx(0.343, abs=0.002)

    def test_double_counting_detected(self):
        t = PAPER
        with pytest.raises(ValueError, match="double-counted"):
            ANALYSIS.combined_speedup(
                Metric.INJECTION,
                {"everything": (t.post, 1.0), "again": (t.post, 1.0)},
            )

    def test_empty_scenario_is_zero(self):
        assert ANALYSIS.combined_speedup(Metric.LATENCY, {}) == 0.0

    def test_invalid_reduction_rejected(self):
        with pytest.raises(ValueError):
            ANALYSIS.combined_speedup(Metric.LATENCY, {"x": (10.0, 1.5)})

    def test_negative_component_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            ANALYSIS.combined_speedup(Metric.LATENCY, {"x": (-1.0, 0.5)})
