"""Unit tests for the analytical models (repro.core.models)."""

import pytest

from repro.core.components import ComponentTimes
from repro.core.models import (
    EndToEndLatencyModel,
    InjectionModelLlp,
    LatencyModelLlp,
    OverallInjectionModel,
    gen_completion,
    min_poll_interval,
)


PAPER = ComponentTimes.paper()


class TestGenCompletion:
    def test_formula(self):
        # 2 × (137.49 + 382.81) + RC-to-MEM(64B).
        expected = 2 * (137.49 + 382.81) + PAPER.rc_to_mem_64b
        assert gen_completion(PAPER) == pytest.approx(expected)

    def test_min_poll_interval(self):
        # gen_completion / LLP_post ≈ 1296.68 / 175.42 ≈ 7.39 → p = 8.
        assert min_poll_interval(PAPER) == 8

    def test_min_poll_interval_rejects_zero_post(self):
        broken = ComponentTimes(
            md_setup=0, barrier_md=0, barrier_dbc=0, pio_copy=0, llp_post_other=0
        )
        with pytest.raises(ValueError):
            min_poll_interval(broken)


class TestInjectionModelLlp:
    def test_paper_prediction(self):
        # §4.2: modeled injection overhead = 295.73 ns.
        assert InjectionModelLlp(PAPER).predicted_ns == pytest.approx(295.73)

    def test_within_5pct_of_paper_observation(self):
        model = InjectionModelLlp(PAPER).predicted_ns
        assert abs(model - 282.33) / 282.33 < 0.05

    def test_components_sum_to_prediction(self):
        model = InjectionModelLlp(PAPER)
        assert sum(model.components().values()) == pytest.approx(model.predicted_ns)


class TestLatencyModelLlp:
    def test_paper_prediction(self):
        # §4.3: Latency = 1135.8 ns.
        assert LatencyModelLlp(PAPER).predicted_ns == pytest.approx(1135.8, abs=0.05)

    def test_within_5pct_of_paper_observation(self):
        # Observed 1190.25 ns (after deducting half a measurement update).
        model = LatencyModelLlp(PAPER).predicted_ns
        assert abs(model - 1190.25) / 1190.25 < 0.05

    def test_rc_to_mem_anchors(self):
        assert LatencyModelLlp(PAPER, payload_bytes=8).rc_to_mem == PAPER.rc_to_mem_8b
        assert LatencyModelLlp(PAPER, payload_bytes=64).rc_to_mem == PAPER.rc_to_mem_64b

    def test_rc_to_mem_interpolates(self):
        mid = LatencyModelLlp(PAPER, payload_bytes=36).rc_to_mem
        assert PAPER.rc_to_mem_8b < mid < PAPER.rc_to_mem_64b

    def test_components_sum_to_prediction(self):
        model = LatencyModelLlp(PAPER)
        assert sum(model.components().values()) == pytest.approx(model.predicted_ns)

    def test_larger_payload_increases_latency(self):
        assert (
            LatencyModelLlp(PAPER, payload_bytes=64).predicted_ns
            > LatencyModelLlp(PAPER, payload_bytes=8).predicted_ns
        )


class TestOverallInjectionModel:
    def test_paper_prediction(self):
        # §6: Equation 2 gives 264.97 ns.
        assert OverallInjectionModel(PAPER).predicted_ns == pytest.approx(264.97)

    def test_within_1pct_of_paper_observation(self):
        model = OverallInjectionModel(PAPER).predicted_ns
        assert abs(model - 263.91) / 263.91 < 0.01

    def test_components(self):
        components = OverallInjectionModel(PAPER).components()
        assert components["post"] == pytest.approx(201.98)
        assert components["post_prog"] == pytest.approx(59.82)
        assert components["misc"] == pytest.approx(3.17)


class TestEndToEndLatencyModel:
    def test_paper_prediction(self):
        # §6: end-to-end latency = 1387.02 ns.
        assert EndToEndLatencyModel(PAPER).predicted_ns == pytest.approx(1387.02)

    def test_within_4pct_of_paper_observation(self):
        model = EndToEndLatencyModel(PAPER).predicted_ns
        assert abs(model - 1336.0) / 1336.0 < 0.04

    def test_nine_components(self):
        components = EndToEndLatencyModel(PAPER).components()
        assert len(components) == 9
        assert sum(components.values()) == pytest.approx(1387.02)

    def test_extends_llp_model_by_hlp_terms(self):
        e2e = EndToEndLatencyModel(PAPER)
        assert e2e.predicted_ns == pytest.approx(
            LatencyModelLlp(PAPER).predicted_ns + 26.56 + 224.66
        )


class TestModelsOnCustomSystems:
    def test_faster_network_reduces_latency_only(self):
        fast_net = ComponentTimes(wire=50.0, switch=10.0)
        assert (
            EndToEndLatencyModel(fast_net).predicted_ns
            < EndToEndLatencyModel(PAPER).predicted_ns
        )
        # Injection is CPU-bound; the network does not appear in Eq. 2.
        assert OverallInjectionModel(fast_net).predicted_ns == pytest.approx(
            OverallInjectionModel(PAPER).predicted_ns
        )

    def test_gen_completion_drives_poll_bound_up_with_slow_network(self):
        slow = ComponentTimes(wire=2000.0)
        assert min_poll_interval(slow) > min_poll_interval(PAPER)
