"""Unit tests for model validation (repro.core.validation)."""

import pytest

from repro.core.components import ComponentTimes
from repro.core.models import (
    EndToEndLatencyModel,
    InjectionModelLlp,
    LatencyModelLlp,
    OverallInjectionModel,
)
from repro.core.validation import ValidationResult, validate

PAPER = ComponentTimes.paper()


class TestValidationResult:
    def test_error_sign(self):
        over = validate("x", modeled_ns=110.0, observed_ns=100.0)
        assert over.error == pytest.approx(0.10)
        under = validate("x", modeled_ns=90.0, observed_ns=100.0)
        assert under.error == pytest.approx(-0.10)

    def test_within_margin_boundary(self):
        assert validate("x", 105.0, 100.0, margin=0.05).within_margin
        assert not validate("x", 106.0, 100.0, margin=0.05).within_margin

    def test_error_percent_absolute(self):
        assert validate("x", 90.0, 100.0).error_percent == pytest.approx(10.0)

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            ValidationResult("x", 1.0, 0.0, 0.05)
        with pytest.raises(ValueError):
            ValidationResult("x", 1.0, 1.0, -0.1)

    def test_str_contains_verdict(self):
        assert "[OK]" in str(validate("x", 100.0, 100.0))
        assert "[FAIL]" in str(validate("x", 200.0, 100.0))


class TestPaperValidations:
    """The paper's four headline accuracy claims, re-verified."""

    def test_llp_injection_within_5pct(self):
        result = validate(
            "llp injection", InjectionModelLlp(PAPER).predicted_ns, 282.33, 0.05
        )
        assert result.within_margin

    def test_llp_latency_within_5pct(self):
        result = validate(
            "llp latency", LatencyModelLlp(PAPER).predicted_ns, 1190.25, 0.05
        )
        assert result.within_margin

    def test_overall_injection_within_1pct(self):
        result = validate(
            "overall injection", OverallInjectionModel(PAPER).predicted_ns, 263.91, 0.01
        )
        assert result.within_margin

    def test_end_to_end_latency_within_4pct(self):
        result = validate(
            "e2e latency", EndToEndLatencyModel(PAPER).predicted_ns, 1336.0, 0.04
        )
        assert result.within_margin
