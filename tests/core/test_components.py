"""Unit tests for the component-times container (repro.core.components)."""

import pytest

from repro.core.components import Category, ComponentTimes


class TestPaperValues:
    """The canonical instance must reproduce every Table 1 aggregate."""

    @pytest.fixture(scope="class")
    def times(self):
        return ComponentTimes.paper()

    def test_llp_post(self, times):
        assert times.llp_post == pytest.approx(175.42)

    def test_network(self, times):
        assert times.network == pytest.approx(382.81)

    def test_hlp_post(self, times):
        assert times.hlp_post == pytest.approx(26.56)

    def test_post(self, times):
        assert times.post == pytest.approx(201.98)

    def test_hlp_rx_prog(self, times):
        assert times.hlp_rx_prog == pytest.approx(224.66)

    def test_hlp_tx_prog(self, times):
        assert times.hlp_tx_prog == pytest.approx(58.86)

    def test_perftest_misc(self, times):
        assert times.perftest_misc == pytest.approx(58.68)

    def test_mpi_wait_totals(self, times):
        assert times.mpi_wait_mpich == pytest.approx(293.29)
        assert times.mpi_wait_ucp == pytest.approx(150.51)


class TestValidation:
    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            ComponentTimes(pcie=-1.0)

    def test_frozen(self):
        times = ComponentTimes.paper()
        with pytest.raises(AttributeError):
            times.pcie = 0.0  # type: ignore[misc]

    def test_hlp_tx_prog_never_negative(self):
        times = ComponentTimes(post_prog=0.5, llp_tx_prog=0.96)
        assert times.hlp_tx_prog == 0.0


class TestCategoryMapping:
    @pytest.mark.parametrize(
        "component,category",
        [
            ("hlp_post", Category.CPU),
            ("llp_post", Category.CPU),
            ("llp_prog", Category.CPU),
            ("hlp_rx_prog", Category.CPU),
            ("tx_pcie", Category.IO),
            ("rx_pcie", Category.IO),
            ("rc_to_mem", Category.IO),
            ("wire", Category.NETWORK),
            ("switch", Category.NETWORK),
        ],
    )
    def test_latency_component_categories(self, component, category):
        times = ComponentTimes.paper()
        assert times.latency_component_category(component) is category

    def test_unknown_component_raises(self):
        with pytest.raises(KeyError):
            ComponentTimes.paper().latency_component_category("flux_capacitor")


class TestCustomSystems:
    def test_custom_values_flow_through_aggregates(self):
        times = ComponentTimes(wire=100.0, switch=30.0)
        assert times.network == 130.0

    def test_integrated_nic_style_instance(self):
        # §7.1's Tofu-like integrated NIC: tiny I/O costs.
        times = ComponentTimes(pcie=20.0, rc_to_mem_8b=50.0)
        assert times.pcie == 20.0
        assert times.llp_post == pytest.approx(175.42)  # CPU unchanged
