"""SystemConfig.builder(): fluent sections, keyword validation, hash
stability.

The pinned digests freeze the cache-compatibility contract from the
ISSUE: introducing the builder and the elided ``network.topology``
field must NOT move ``stable_hash()`` for unchanged defaults, or every
cached campaign result would silently invalidate.  Re-pin only on an
intentional config-schema change.
"""

import pytest

from repro.network.topology import TopologySpec
from repro.node.config import SystemConfig

#: stable_hash() of the untouched paper testbed — pre-PR value.
HASH_DEFAULT = "5914ecc17e3ac4c5"
#: ...with deterministic=True.
HASH_DETERMINISTIC = "7679816dd0a64993"
#: ...with seed=7.
HASH_SEED7 = "924b29cb7108eefa"
#: ...with a k=4 fat-tree topology set (MUST differ from default).
HASH_FAT_TREE4 = "b34da2a55bb0c288"


class TestHashStability:
    def test_default_hash_unmoved_by_the_api_redesign(self):
        assert SystemConfig.paper_testbed().stable_hash() == HASH_DEFAULT

    def test_variant_hashes_unmoved(self):
        assert (
            SystemConfig.paper_testbed(deterministic=True).stable_hash()
            == HASH_DETERMINISTIC
        )
        assert SystemConfig.paper_testbed(seed=7).stable_hash() == HASH_SEED7

    def test_builder_with_no_calls_reproduces_the_default_hash(self):
        assert SystemConfig.builder().build().stable_hash() == HASH_DEFAULT

    def test_topology_none_is_elided_from_the_hash(self):
        # Explicitly setting topology=None must hash like never setting it.
        explicit = SystemConfig.builder().topology(None).build()
        assert explicit.stable_hash() == HASH_DEFAULT

    def test_setting_a_topology_changes_the_hash(self):
        config = SystemConfig.builder().topology("fat_tree:4").build()
        assert config.stable_hash() == HASH_FAT_TREE4
        assert config.stable_hash() != HASH_DEFAULT


class TestBuilderSections:
    def test_sections_compose(self):
        config = (
            SystemConfig.builder()
            .nic(txq_depth=4)
            .network(switch_latency_ns=50.0)
            .seed(7)
            .deterministic()
            .build()
        )
        assert config.nic.txq_depth == 4
        assert config.network.switch_latency_ns == 50.0
        assert config.seed == 7
        assert config.deterministic is True

    def test_repeated_section_calls_accumulate(self):
        config = (
            SystemConfig.builder()
            .network(switch_latency_ns=50.0)
            .network(wire_latency_ns=100.0)
            .build()
        )
        assert config.network.switch_latency_ns == 50.0
        assert config.network.wire_latency_ns == 100.0

    def test_unknown_keyword_raises_with_valid_names(self):
        with pytest.raises(TypeError, match="txq_depth"):
            SystemConfig.builder().nic(txq_dept=4)  # typo

    def test_section_values_are_validated_immediately(self):
        with pytest.raises(ValueError):
            SystemConfig.builder().network(wire_latency_ns=-1.0)

    def test_topology_accepts_spec_and_string(self):
        spec = TopologySpec(kind="ring")
        assert SystemConfig.builder().topology(spec).build().network.topology is spec
        parsed = SystemConfig.builder().topology("torus:2x2").build()
        assert parsed.network.topology == TopologySpec(kind="torus", dims=(2, 2))

    def test_faults_accepts_path(self):
        config = (
            SystemConfig.builder()
            .faults("examples/faults/lossy_wire.json")
            .build()
        )
        assert config.faults is not None and config.faults.rules

    def test_timer_and_evolve(self):
        config = (
            SystemConfig.builder()
            .timer(overhead_ns=10.0, std_ns=0.5)
            .evolve(seed=99)
            .build()
        )
        assert config.timer_overhead_ns == 10.0
        assert config.timer_overhead_std_ns == 0.5
        assert config.seed == 99

    def test_builds_from_an_explicit_base(self):
        base = SystemConfig.paper_testbed_direct()
        config = SystemConfig.builder(base).build()
        assert config == base

    def test_builder_returns_self_for_chaining(self):
        builder = SystemConfig.builder()
        assert builder.nic(txq_depth=2) is builder
