"""Unit tests for node/testbed assembly (repro.node)."""

from repro.node import SystemConfig, Testbed


class TestAssembly:
    def test_two_nodes_share_one_clock(self):
        tb = Testbed()
        assert tb.node1.env is tb.node2.env is tb.env

    def test_initiator_and_target_aliases(self):
        tb = Testbed()
        assert tb.initiator is tb.node1
        assert tb.target is tb.node2

    def test_fabric_connects_the_two_nics(self):
        tb = Testbed()
        assert tb.node1.nic.peer_name == tb.node2.nic.name
        assert tb.node2.nic.peer_name == tb.node1.nic.name

    def test_analyzer_taps_node1_link(self):
        tb = Testbed()
        assert tb.analyzer.link is tb.node1.link

    def test_analyzer_can_be_disabled(self):
        tb = Testbed(analyzer_enabled=False)
        assert not tb.analyzer.capture

    def test_nodes_have_independent_rng_streams(self):
        tb = Testbed()
        a = tb.node1.cpu.rng.random(8)
        b = tb.node2.cpu.rng.random(8)
        assert not (a == b).all()


class TestDeterminism:
    def test_same_seed_reproduces_cpu_noise(self):
        def sample(seed):
            tb = Testbed(SystemConfig.paper_testbed(seed=seed))
            durations = []

            def body():
                for _ in range(20):
                    duration = yield from tb.node1.cpu.execute("md_setup")
                    durations.append(duration)

            tb.env.run(until=tb.env.process(body()))
            return durations

        assert sample(7) == sample(7)
        assert sample(7) != sample(8)

    def test_deterministic_config_has_no_noise(self):
        tb = Testbed(SystemConfig.paper_testbed(deterministic=True))
        durations = []

        def body():
            for _ in range(5):
                duration = yield from tb.node1.cpu.execute("md_setup")
                durations.append(duration)

        tb.env.run(until=tb.env.process(body()))
        assert durations == [27.78] * 5

    def test_run_helper_advances_clock(self):
        tb = Testbed()
        tb.env.timeout(100.0)
        tb.run()
        assert tb.env.now == 100.0
