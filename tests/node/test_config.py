"""Unit tests for the system configuration (repro.node.config)."""

import pytest

from repro.node.config import SystemConfig
from repro.sim.rng import JitterModel


class TestPaperTestbed:
    def test_default_aggregates_match_paper(self):
        config = SystemConfig.paper_testbed()
        assert config.costs.llp_post == pytest.approx(175.42)
        assert config.pcie.base_latency_ns == pytest.approx(137.49)
        assert config.network.one_way_latency() == pytest.approx(382.81)
        assert config.timer_overhead_ns == pytest.approx(49.69)

    def test_direct_variant_removes_switch(self):
        config = SystemConfig.paper_testbed_direct()
        assert config.network.switch_count == 0
        assert config.network.one_way_latency() == pytest.approx(274.81)

    def test_deterministic_flag(self):
        config = SystemConfig.paper_testbed(deterministic=True)
        jitter = config.effective_jitter()
        assert jitter.cv == 0.0
        assert jitter.outlier_prob == 0.0
        assert config.effective_timer_overhead() == (49.69, 0.0)

    def test_noisy_default(self):
        config = SystemConfig.paper_testbed()
        assert config.effective_jitter().cv > 0
        mean, std = config.effective_timer_overhead()
        assert (mean, std) == (49.69, 1.48)


class TestEvolve:
    def test_evolve_replaces_field(self):
        config = SystemConfig.paper_testbed()
        evolved = config.evolve(seed=42)
        assert evolved.seed == 42
        assert evolved.costs is config.costs

    def test_evolve_does_not_mutate_original(self):
        config = SystemConfig.paper_testbed()
        config.evolve(deterministic=True)
        assert not config.deterministic

    def test_evolve_nested_config(self):
        config = SystemConfig.paper_testbed()
        evolved = config.evolve(network=config.network.without_switch())
        assert evolved.network.switch_count == 0
        assert config.network.switch_count == 1

    def test_invalid_timer_overhead_rejected(self):
        with pytest.raises(ValueError):
            SystemConfig(timer_overhead_ns=-1.0)

    def test_custom_jitter(self):
        config = SystemConfig(jitter=JitterModel(cv=0.5))
        assert config.effective_jitter().cv == 0.5
