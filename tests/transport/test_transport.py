"""The pluggable transport layer: resolution, shm path, multi-rail."""

import zlib

import pytest

from repro.llp.uct import UCS_OK, UctWorker
from repro.node.cluster import Cluster
from repro.node.config import SystemConfig
from repro.node.testbed import Testbed
from repro.transport import TransportConfig

DET = SystemConfig.builder().deterministic().build()


def _workers(cluster):
    return [UctWorker(node) for node in cluster.nodes]


class TestTransportConfig:
    def test_defaults_are_single_rail_shm_enabled(self):
        config = TransportConfig()
        assert config.rails == 1
        assert config.shm_enabled
        assert config.shm_copy_64b_ns is None

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"rails": 0},
            {"rail_policy": "fastest"},
            {"shm_latency_ns": -1.0},
            {"shm_copy_64b_ns": -0.5},
            {"rail_split_bytes": -1},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            TransportConfig(**kwargs)

    def test_default_transport_elided_from_config_hash(self):
        # Pre-transport campaign caches key on the config hash; the new
        # section must not invalidate them at its default value.
        from repro.sim.hashing import canonicalize

        base = SystemConfig.paper_testbed()
        (payload,) = canonicalize(base).values()
        assert "transport" not in payload
        changed = SystemConfig.builder().transport(rails=2).build()
        (changed_payload,) = canonicalize(changed).values()
        assert "transport" in changed_payload
        assert base.stable_hash() != changed.stable_hash()

    def test_builder_rejects_unknown_transport_keyword(self):
        with pytest.raises(TypeError, match="rail_policy"):
            SystemConfig.builder().transport(rail_polcy="round_robin")


class TestResolution:
    def test_cross_node_resolves_nic_transport(self):
        tb = Testbed(DET)
        w1, w2 = UctWorker(tb.node1), UctWorker(tb.node2)
        ep = w1.create_iface().create_ep(w2.create_iface())
        assert ep.transport.caps.name == "pcie_nic"
        assert ep.transport.caps.uses_pcie

    def test_same_node_resolves_shm_transport(self):
        cluster = Cluster(2, config=DET, processes_per_node=2)
        node = cluster.nodes[0]
        w1 = UctWorker(node, core=node.cores[0])
        w2 = UctWorker(node, core=node.cores[1])
        ep = w1.create_iface().create_ep(w2.create_iface())
        assert ep.transport.caps.name == "shm"
        assert ep.transport.caps.intra_node
        assert not ep.transport.caps.uses_pcie

    def test_shm_disabled_falls_back_to_nic(self):
        config = SystemConfig.builder(DET).transport(shm_enabled=False).build()
        cluster = Cluster(2, config=config, processes_per_node=2)
        node = cluster.nodes[0]
        w1 = UctWorker(node, core=node.cores[0])
        w2 = UctWorker(node, core=node.cores[1])
        ep = w1.create_iface().create_ep(w2.create_iface())
        assert ep.transport.caps.name == "pcie_nic"


class TestShmPath:
    def test_shm_post_completes_inline_and_delivers(self):
        cluster = Cluster(2, config=DET, processes_per_node=2)
        node = cluster.nodes[0]
        w1 = UctWorker(node, core=node.cores[0])
        w2 = UctWorker(node, core=node.cores[1])
        iface1, iface2 = w1.create_iface(), w2.create_iface()
        ep = iface1.create_ep(iface2)
        env = cluster.env
        got = []
        iface2.set_am_handler(lambda message: got.append(message))

        def sender():
            status = yield from ep.am_short(8)
            assert status == UCS_OK

        def receiver():
            yield from w2.progress_until(lambda: bool(got))

        env.process(sender(), name="shm.send")
        p = env.process(receiver(), name="shm.recv")
        env.run(until=p)
        assert len(got) == 1
        message = got[0]
        assert message.payload_bytes == 8
        # No PCIe/NIC artefacts: never entered a queue pair.
        assert message.qp is None
        assert all(qp.txq.occupied == 0 for qp in iface1.qps)
        assert "shm_copied" in message.timestamps
        assert iface1.successful_posts == 1

    def test_shm_never_busy_posts(self):
        cluster = Cluster(2, config=DET, processes_per_node=2)
        node = cluster.nodes[0]
        w1 = UctWorker(node, core=node.cores[0])
        w2 = UctWorker(node, core=node.cores[1])
        ep = w1.create_iface().create_ep(w2.create_iface())
        assert ep.can_post(8)
        assert ep.can_post(4096)

    def test_shm_is_faster_than_nic_loopback_config(self):
        # One-way 8B latency: shm delivery instant vs the full
        # PCIe+NIC+wire path between nodes.
        cluster = Cluster(2, config=DET, processes_per_node=2)
        node = cluster.nodes[0]
        w1 = UctWorker(node, core=node.cores[0])
        w2 = UctWorker(node, core=node.cores[1])
        iface2 = w2.create_iface()
        ep = w1.create_iface().create_ep(iface2)
        env = cluster.env

        def sender():
            yield from ep.am_short(8)

        p = env.process(sender(), name="send")
        env.run(until=p)
        env.run()  # drain the deferred delivery
        message = ep.iface.last_message
        shm_ns = message.timestamps["payload_visible"] - message.timestamps["posted"]
        # The config's inter-node one-way network latency alone exceeds
        # the whole shm hand-off.
        assert shm_ns < cluster.config.network.one_way_latency()


class TestMultiRail:
    def _run_posts(self, policy, n_posts=8, payload=8, split=64):
        config = (
            SystemConfig.builder()
            .deterministic()
            .transport(rails=2, rail_policy=policy, rail_split_bytes=split)
            .build()
        )
        cluster = Cluster(2, config=config)
        w0, w1 = _workers(cluster)
        i0, i1 = w0.create_iface(), w1.create_iface()
        ep = i0.create_ep(i1)

        def sender():
            for _ in range(n_posts):
                if payload <= config.nic.inline_max_bytes:
                    status = yield from ep.put_short(payload)
                else:
                    status = yield from ep.put_zcopy(payload)
                assert status == UCS_OK
            while any(qp.txq.occupied for qp in i0.qps):
                yield from w0.progress()

        p = cluster.env.process(sender(), name="sender")
        cluster.run(until=p)
        stats = cluster.fabric.link_stats()
        return cluster, ep, stats

    def test_node_owns_one_stack_per_rail(self):
        config = SystemConfig.builder(DET).transport(rails=2).build()
        cluster = Cluster(2, config=config)
        node = cluster.nodes[0]
        assert len(node.rails) == 2
        assert node.rails[0].nic is node.nic
        assert node.rails[1].nic.name == "node0.nic1"
        assert node.rails[1].link is not node.link

    def test_round_robin_splits_posts_evenly(self):
        _, _, stats = self._run_posts("round_robin")
        assert stats["node0.nic->node1.nic"]["frames"] == 4
        assert stats["node0.nic1->node1.nic1"]["frames"] == 4

    def test_hash_by_peer_keeps_flow_on_one_rail(self):
        cluster, ep, stats = self._run_posts("hash_by_peer")
        key = f"{ep.iface.name}->{ep.remote_recv_target}"
        rail = zlib.crc32(key.encode("utf-8")) % 2
        expected = f"node0.nic{'' if rail == 0 else '1'}->node1.nic{'' if rail == 0 else '1'}"
        assert stats[expected]["frames"] == 8

    def test_size_split_routes_large_messages_to_last_rail(self):
        _, _, small = self._run_posts("size_split", payload=8, split=64)
        assert small["node0.nic->node1.nic"]["frames"] == 8
        _, _, large = self._run_posts("size_split", payload=128, split=64)
        assert large["node0.nic1->node1.nic1"]["frames"] == 8

    def test_single_rail_run_unchanged_by_transport_section(self):
        # The refactor's contract: with defaults, posting artefacts are
        # exactly the pre-transport ones (names, rail list, qp alias).
        tb = Testbed(DET)
        worker = UctWorker(tb.node1)
        iface = worker.create_iface()
        assert len(iface.qps) == 1
        assert iface.qp is iface.qps[0]
        assert iface.qp.name == f"{iface.name}.qp"
        assert len(tb.node1.rails) == 1
        assert tb.node1.rails[0].nic is tb.node1.nic
