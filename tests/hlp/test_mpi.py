"""Integration tests for the MPI layer (repro.hlp.mpi)."""

import pytest

from repro.hlp.mpi import MpiStack
from repro.node import SystemConfig, Testbed


def make_comms(signal_period=64):
    tb = Testbed(SystemConfig.paper_testbed(deterministic=True))
    s1 = MpiStack(tb.node1, signal_period=signal_period)
    s2 = MpiStack(tb.node2, signal_period=signal_period)
    return tb, s1.connect(s2), s2.connect(s1), s1, s2


class TestIsend:
    def test_isend_returns_completed_request_for_inline(self):
        tb, comm1, _comm2, _s1, _s2 = make_comms()

        def body():
            request = yield from comm1.isend(8)
            return request, tb.env.now

        request, elapsed = tb.env.run(until=tb.env.process(body()))
        assert request.completed
        # MPICH (24.37) + UCP (2.19) + LLP_post (175.42) = 201.98: the
        # paper's Post.
        assert elapsed == pytest.approx(201.98)

    def test_isend_request_kinds(self):
        tb, comm1, _comm2, _s1, _s2 = make_comms()

        def body():
            send = yield from comm1.isend(8)
            recv = yield from comm1.irecv(8)
            return send, recv

        send, recv = tb.env.run(until=tb.env.process(body()))
        assert send.kind == "send"
        assert recv.kind == "recv"


class TestPingPong:
    def test_round_trip_completes(self):
        tb, comm1, comm2, _s1, _s2 = make_comms()

        def initiator():
            recv = yield from comm1.irecv(8)
            yield from comm1.isend(8)
            yield from comm1.wait(recv)
            return tb.env.now

        def responder():
            recv = yield from comm2.irecv(8)
            yield from comm2.wait(recv)
            yield from comm2.isend(8)

        tb.env.process(responder())
        elapsed = tb.env.run(until=tb.env.process(initiator()))
        # A full round trip: roughly 2× the §6 one-way model (1387.02),
        # minus overlapped work; sanity-bound it.
        assert 2000.0 < elapsed < 3500.0

    def test_wait_on_completed_request_still_charges_entry_costs(self):
        tb, comm1, comm2, _s1, _s2 = make_comms()

        def initiator():
            yield from comm1.isend(8)

        def responder():
            recv = yield from comm2.irecv(8)
            yield from comm2.wait(recv)
            # Waiting again on the now-complete request costs the
            # blocking-entry and after-progress overheads, no loop.
            t0 = tb.env.now
            yield from comm2.wait(recv)
            return tb.env.now - t0

        tb.env.process(initiator())
        rewait = tb.env.run(until=tb.env.process(responder()))
        assert rewait == pytest.approx(208.41 + 36.89)


class TestWaitall:
    def test_waitall_retires_full_window(self):
        tb, comm1, _comm2, s1, _s2 = make_comms()

        def body():
            requests = []
            for _ in range(64):
                requests.append((yield from comm1.isend(8)))
            yield from comm1.waitall(requests)
            return requests

        requests = tb.env.run(until=tb.env.process(body()))
        assert all(r.completed for r in requests)

    def test_waitall_reposts_busy_window(self):
        tb, comm1, _comm2, s1, _s2 = make_comms()
        depth = tb.config.nic.txq_depth

        def body():
            requests = []
            for _ in range(depth + 32):
                requests.append((yield from comm1.isend(8)))
            yield from comm1.waitall(requests)
            return requests

        requests = tb.env.run(until=tb.env.process(body()))
        assert all(r.completed for r in requests)
        assert s1.ucp.busy_posts_encountered == 32
        assert s1.ucp.progress_llp_posts == 32

    def test_waitall_empty_list(self):
        tb, comm1, _comm2, _s1, _s2 = make_comms()

        def body():
            yield from comm1.waitall([])
            return tb.env.now

        assert tb.env.run(until=tb.env.process(body())) == pytest.approx(0.0)


class TestCriticalPathComposition:
    def test_one_way_latency_matches_e2e_model_within_tolerance(self):
        """The simulated MPI one-way latency must land near the §6
        analytical model (1387.02 ns) — the paper's own validation gap
        is 4%."""
        tb, comm1, comm2, _s1, _s2 = make_comms()
        marks = {}

        def initiator():
            recv = yield from comm1.irecv(8)
            yield from comm1.isend(8)
            yield from comm1.wait(recv)

        def responder():
            recv = yield from comm2.irecv(8)
            yield from comm2.wait(recv)
            marks["one_way"] = tb.env.now
            yield from comm2.isend(8)

        tb.env.process(responder())
        tb.env.run(until=tb.env.process(initiator()))
        # One-way time measured at the point the target's wait returns;
        # the model excludes the responder's isend.
        assert marks["one_way"] == pytest.approx(1387.02, rel=0.05)
