"""Integration tests for the UCP layer (repro.hlp.ucp)."""

import pytest

from repro.hlp.ucp import UcpWorker
from repro.node import SystemConfig, Testbed


def make_pair(signal_period=64):
    tb = Testbed(SystemConfig.paper_testbed(deterministic=True))
    w1 = UcpWorker(tb.node1, signal_period=signal_period)
    w2 = UcpWorker(tb.node2, signal_period=signal_period)
    return tb, w1, w2, w1.create_ep(w2)


class TestSend:
    def test_inline_send_completes_immediately(self):
        tb, w1, _w2, ep = make_pair()

        def body():
            request = yield from w1.tag_send_nb(ep, 8)
            return request

        request = tb.env.run(until=tb.env.process(body()))
        assert request.completed
        assert request.kind == "send"

    def test_send_cost_is_ucp_plus_llp_post(self):
        tb, w1, _w2, ep = make_pair()

        def body():
            yield from w1.tag_send_nb(ep, 8)
            return tb.env.now

        # ucp_isend (2.19) + LLP_post (175.42).
        assert tb.env.run(until=tb.env.process(body())) == pytest.approx(177.61)

    def test_busy_send_pended(self):
        tb, w1, _w2, ep = make_pair(signal_period=64)
        depth = tb.config.nic.txq_depth

        def body():
            requests = []
            for _ in range(depth + 3):
                request = yield from w1.tag_send_nb(ep, 8)
                requests.append(request)
            return requests

        requests = tb.env.run(until=tb.env.process(body()))
        pended = [r for r in requests if not r.completed]
        assert len(pended) == 3
        assert w1.busy_posts_encountered == 3
        assert len(w1.pending_sends) == 3

    def test_pended_sends_reposted_by_progress(self):
        tb, w1, _w2, ep = make_pair(signal_period=64)
        depth = tb.config.nic.txq_depth

        def body():
            requests = []
            for _ in range(depth + 3):
                request = yield from w1.tag_send_nb(ep, 8)
                requests.append(request)
            # Spin progress until the pended requests complete; CQEs
            # free slots, the re-posts drain the pending queue.
            while not all(r.completed for r in requests):
                yield from w1.worker_progress()
            return requests

        requests = tb.env.run(until=tb.env.process(body()))
        assert all(r.completed for r in requests)
        assert w1.progress_llp_posts == 3
        assert w1.progress_llp_post_ns > 0


class TestReceive:
    def test_expected_receive_matches_incoming(self):
        tb, w1, w2, ep = make_pair()

        def receiver():
            request = yield from w2.tag_recv_nb(8)
            while not request.completed:
                yield from w2.worker_progress()
            return request

        def sender():
            yield from w1.tag_send_nb(ep, 8)

        tb.env.process(sender())
        request = tb.env.run(until=tb.env.process(receiver()))
        assert request.completed
        assert request.message is not None
        assert request.message.payload_bytes == 8

    def test_unexpected_message_queued_then_matched(self):
        tb, w1, w2, ep = make_pair()

        def sender():
            yield from w1.tag_send_nb(ep, 8)

        def receiver():
            # Let the message arrive before any recv is posted.
            yield tb.env.timeout(20000.0)
            while not w2.unexpected:
                yield from w2.worker_progress()
            request = yield from w2.tag_recv_nb(8)
            return request

        tb.env.process(sender())
        request = tb.env.run(until=tb.env.process(receiver()))
        assert request.completed

    def test_upper_callback_runs_on_completion(self):
        tb, w1, w2, ep = make_pair()
        calls = []

        def receiver():
            request = yield from w2.tag_recv_nb(8, upper_callback=calls.append)
            while not request.completed:
                yield from w2.worker_progress()

        def sender():
            yield from w1.tag_send_nb(ep, 8)

        tb.env.process(sender())
        tb.env.run(until=tb.env.process(receiver()))
        assert len(calls) == 1
        assert calls[0].completed

    def test_fifo_matching_order(self):
        tb, w1, w2, ep = make_pair()
        done = []

        def receiver():
            first = yield from w2.tag_recv_nb(8)
            second = yield from w2.tag_recv_nb(8)
            while not (first.completed and second.completed):
                yield from w2.worker_progress()
            done.extend([first.request_id, second.request_id])
            return (first, second)

        def sender():
            yield from w1.tag_send_nb(ep, 8)
            yield from w1.tag_send_nb(ep, 8)

        tb.env.process(sender())
        first, second = tb.env.run(until=tb.env.process(receiver()))
        assert first.request_id < second.request_id
        assert first.message.msg_id < second.message.msg_id


class TestUnsignaledCompletions:
    def test_cqes_amortized_over_signal_period(self):
        tb, w1, _w2, ep = make_pair(signal_period=16)

        def body():
            for _ in range(32):
                yield from w1.tag_send_nb(ep, 8)
            yield tb.env.timeout(20000.0)
            # Two CQEs (one per 16 ops) retire all 32 slots.
            yield from w1.worker_progress()
            yield from w1.worker_progress()

        tb.env.run(until=tb.env.process(body()))
        assert w1.iface.qp.cqes_written == 2
        assert w1.iface.qp.txq.occupied == 0
