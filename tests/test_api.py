"""Tests for repro.api.Experiment — the single composition point."""

import dataclasses
import json

import pytest

from repro.api import Experiment
from repro.network.topology import TopologySpec
from repro.node.config import SystemConfig
from repro.node.testbed import Testbed


class TestConstruction:
    def test_defaults_to_paper_testbed(self):
        exp = Experiment()
        assert exp.config == SystemConfig.paper_testbed()
        assert exp.nodes == 2

    def test_accepts_a_builder(self):
        exp = Experiment(SystemConfig.builder().nic(txq_depth=4))
        assert exp.config.nic.txq_depth == 4

    def test_seed_and_deterministic_overrides(self):
        exp = Experiment(seed=7, deterministic=True)
        assert exp.config.seed == 7
        assert exp.config.deterministic is True

    def test_topology_string_is_parsed(self):
        exp = Experiment(nodes=16, topology="fat_tree:4")
        assert exp.config.network.topology == TopologySpec(kind="fat_tree", k=4)

    def test_topology_spec_passes_through(self):
        spec = TopologySpec(kind="ring")
        assert Experiment(topology=spec).config.network.topology is spec

    def test_faults_path_is_loaded(self):
        exp = Experiment(faults="examples/faults/lossy_wire.json")
        assert exp.config.faults is not None
        assert exp.config.faults.name == "lossy-wire"

    def test_rejects_single_node(self):
        with pytest.raises(ValueError):
            Experiment(nodes=1)


class TestClusterAndTestbed:
    def test_cluster_has_requested_size_and_topology(self):
        exp = Experiment(nodes=4, topology="ring", deterministic=True)
        cluster = exp.cluster()
        assert len(cluster) == 4
        assert cluster.topology is not None
        assert cluster.topology.spec.kind == "ring"

    def test_testbed_requires_two_nodes(self):
        assert isinstance(Experiment(deterministic=True).testbed(), Testbed)
        with pytest.raises(ValueError):
            Experiment(nodes=4).testbed()


class TestRun:
    def test_run_returns_measurements(self):
        exp = Experiment(deterministic=True)
        run = exp.run("am_lat", iterations=30, warmup=5)
        assert run.workload == "am_lat"
        assert run.measurements["observed_latency_ns"] > 0
        assert run.trace_summary is None
        json.dumps(run.measurements)  # JSON-encodable

    def test_nodes_fold_into_collective_workloads(self):
        exp = Experiment(nodes=4, topology="ring", deterministic=True)
        run = exp.run("allreduce", iterations=1)
        assert run.params["n_nodes"] == 4
        assert run.measurements["n_nodes"] == 4

    def test_explicit_n_nodes_wins(self):
        exp = Experiment(nodes=8, deterministic=True)
        run = exp.run("allreduce", n_nodes=2, iterations=1)
        assert run.measurements["n_nodes"] == 2

    def test_unknown_workload_raises_with_registry(self):
        with pytest.raises(KeyError):
            Experiment().run("nonsense")

    def test_trace_attaches_summary(self):
        exp = Experiment(deterministic=True, trace=True)
        run = exp.run("am_lat", iterations=30, warmup=5)
        assert run.trace_summary is not None
        assert run.trace_summary["spans"] > 0


class TestSweep:
    def test_axes_dict_becomes_campaign(self):
        exp = Experiment(deterministic=True, name="t")
        result = exp.sweep(
            "allreduce",
            axes={"n_nodes": (2, 4)},
            params={"iterations": 1},
        )
        assert not result.failures
        assert len(result.records) == 2
        assert {r.params["n_nodes"] for r in result.records} == {2, 4}

    def test_fixed_params_and_seeds(self):
        exp = Experiment(deterministic=True)
        result = exp.sweep("am_lat", params={"iterations": 20, "warmup": 5},
                           seeds=(1, 2))
        assert len(result.records) == 2
        assert {r.seed for r in result.records} == {1, 2}


class TestConfigEquivalence:
    def test_experiment_config_matches_manual_composition(self):
        """The api layer composes, it does not change physics: the same
        knobs through Experiment and through manual evolve() hash equal."""
        via_api = Experiment(
            topology="fat_tree:4", seed=7, deterministic=True
        ).config
        manual = SystemConfig.paper_testbed(seed=7, deterministic=True)
        manual = manual.evolve(
            network=dataclasses.replace(
                manual.network, topology=TopologySpec.parse("fat_tree:4")
            )
        )
        assert via_api.stable_hash() == manual.stable_hash()


class TestServe:
    def test_serve_builds_a_tier_over_the_experiment_config(self, tmp_path):
        exp = Experiment(deterministic=True)
        tier = exp.serve(tmp_path / "store", verify_fraction=0.0)
        assert tier.base_config == exp.config
        answer = tier.query("put_oneway_latency", {"payload_bytes": 64})
        assert answer.source == "simulation"
        assert tier.query(
            "put_oneway_latency", {"payload_bytes": 64}
        ).source == "store"

    def test_query_one_shot_hits_the_shared_store(self, tmp_path):
        exp = Experiment(deterministic=True)
        store = tmp_path / "store"
        first = exp.query(store, "put_oneway_latency", payload_bytes=64)
        second = exp.query(store, "put_oneway_latency", payload_bytes=64)
        assert first.source == "simulation"
        assert second.source == "store"
        assert second.measurements == first.measurements

    def test_sweep_cache_feeds_serve_queries(self, tmp_path):
        """Experiment.sweep(cache_dir=X) warms Experiment.serve(X)."""
        exp = Experiment(deterministic=True)
        store = tmp_path / "store"
        exp.sweep(
            "put_oneway_latency",
            axes={"payload_bytes": (64, 128)},
            cache_dir=str(store),
        )
        answer = exp.query(store, "put_oneway_latency", payload_bytes=128)
        assert answer.source == "store"


class TestAnalyze:
    def test_latency_tolerance_report(self):
        exp = Experiment(nodes=4, deterministic=True)
        report = exp.analyze("barrier", iterations=1)
        assert report.critical_path_ns > 0
        assert {"host", "wire", "switch"} <= set(report.components)
        for tolerance in report.components.values():
            assert tolerance.slack_ns >= 0.0

    def test_critical_path_breakdown(self):
        exp = Experiment(nodes=2, deterministic=True)
        breakdown = exp.analyze("barrier", what="critical-path")
        assert breakdown.value("wire") > 0
        assert breakdown.value("rc_to_mem") > 0

    def test_recovery_counts(self):
        exp = Experiment(nodes=2, deterministic=True)
        counts = exp.analyze("barrier", what="recovery")
        assert sum(counts.values()) == 0

    def test_unknown_analysis_lists_registered(self):
        exp = Experiment(nodes=2, deterministic=True)
        with pytest.raises(ValueError, match="registered: latency-tolerance"):
            exp.analyze("barrier", what="nope")
