"""Unit tests for system comparison (repro.analysis.compare)."""

import pytest

from repro.analysis import compare_systems
from repro.core.components import ComponentTimes

PAPER = ComponentTimes.paper()
INTEGRATED = ComponentTimes(pcie=10.0, rc_to_mem_8b=60.0, rc_to_mem_64b=75.0)


class TestSystemComparison:
    @pytest.fixture(scope="class")
    def comparison(self):
        return compare_systems(PAPER, INTEGRATED, "tx2", "integrated")

    def test_latency_delta(self, comparison):
        # 2×(137.49−10) + (240.96−60) saved.
        expected = -(2 * 127.49 + 180.96)
        assert comparison.latency_delta_ns == pytest.approx(expected)

    def test_speedup_sign(self, comparison):
        assert comparison.latency_speedup > 0.3

    def test_injection_unchanged_by_io(self, comparison):
        # Eq. 2 has no I/O terms.
        assert comparison.injection_delta_ns == pytest.approx(0.0)

    def test_component_deltas_sorted_by_magnitude(self, comparison):
        deltas = [abs(row[3]) for row in comparison.component_deltas()]
        assert deltas == sorted(deltas, reverse=True)
        assert comparison.component_deltas()[0][0] == "RC-to-MEM(8B)"

    def test_insight_flips_detected(self, comparison):
        flips = dict(
            (number, (base, cand))
            for number, base, cand in comparison.insight_flips()
        )
        # Insight 3 (target-side I/O dominance) cannot survive an
        # integrated NIC.
        assert 3 in flips
        assert flips[3] == (True, False)

    def test_render_contains_headline_and_components(self, comparison):
        text = comparison.render()
        assert "tx2 vs integrated" in text
        assert "RC-to-MEM(8B)" in text
        assert "Insight 3 flips" in text

    def test_identical_systems_report_agreement(self):
        same = compare_systems(PAPER, PAPER)
        assert same.latency_delta_ns == 0.0
        assert same.insight_flips() == []
        assert "insights agree" in same.render()
