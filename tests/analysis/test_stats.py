"""Unit tests for distribution summaries (repro.analysis.stats)."""

import numpy as np
import pytest

from repro.analysis.stats import summarize


class TestSummarize:
    def test_basic_statistics(self):
        summary = summarize([1.0, 2.0, 3.0, 4.0])
        assert summary.count == 4
        assert summary.mean == pytest.approx(2.5)
        assert summary.median == pytest.approx(2.5)
        assert summary.minimum == 1.0
        assert summary.maximum == 4.0
        assert summary.std == pytest.approx(np.std([1, 2, 3, 4], ddof=1))

    def test_single_sample_has_zero_std(self):
        summary = summarize([5.0])
        assert summary.std == 0.0
        assert summary.mean == 5.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_accepts_ndarray(self):
        summary = summarize(np.array([10.0, 20.0]))
        assert summary.mean == 15.0

    def test_str_contains_fields(self):
        text = str(summarize([1.0, 2.0]))
        assert "mean=" in text and "median=" in text
