"""Integration tests for the measurement methodology (repro.analysis).

These are the reproduction's centrepiece: running the paper's §§3-6
measurement workflow against the noisy simulator must recover the
configured ground truth and validate the analytical models within the
paper's margins.
"""

import pytest

from repro.analysis import measure_component_times
from repro.core.models import (
    EndToEndLatencyModel,
    InjectionModelLlp,
    LatencyModelLlp,
    OverallInjectionModel,
)
from repro.node import SystemConfig


@pytest.fixture(scope="module")
def campaign():
    return measure_component_times(SystemConfig.paper_testbed(seed=11), quick=True)


@pytest.fixture(scope="module")
def times(campaign):
    return campaign.to_component_times()


class TestSoftwareRecovery:
    """Profiled regions must recover the configured segment costs."""

    @pytest.mark.parametrize(
        "region,truth,tolerance",
        [
            ("md_setup", 27.78, 0.15),
            ("barrier_md", 17.33, 0.15),
            ("barrier_dbc", 21.07, 0.15),
            ("pio_copy", 94.25, 0.05),
            ("llp_post", 175.42, 0.05),
            ("llp_prog", 61.63, 0.10),
            ("busy_post", 8.99, 0.35),
            ("measurement_update", 49.69, 0.10),
        ],
    )
    def test_llp_regions(self, campaign, region, truth, tolerance):
        assert campaign.llp[region] == pytest.approx(truth, rel=tolerance)

    def test_hlp_layer_subtraction(self, times):
        # §5: MPICH = MPI_Isend − ucp_tag_send_nb; UCP = tag_send − am_short.
        assert times.mpich_isend == pytest.approx(24.37, rel=0.4)
        assert times.ucp_isend == pytest.approx(2.19, abs=6.0)

    def test_recv_callback_chain(self, times):
        assert times.mpich_recv_callback == pytest.approx(47.99, rel=0.10)
        assert times.ucp_recv_callback == pytest.approx(139.78, rel=0.10)
        assert times.mpich_after_progress == pytest.approx(36.89, rel=0.15)

    def test_mpi_wait_totals(self, times):
        assert times.mpi_wait_mpich == pytest.approx(293.29, rel=0.05)
        assert times.mpi_wait_ucp == pytest.approx(150.51, rel=0.10)


class TestHardwareRecovery:
    """Trace arithmetic must recover the configured hardware latencies."""

    def test_pcie_from_mwr_ack_round_trip(self, campaign):
        assert campaign.hardware["pcie"] == pytest.approx(137.49, rel=0.01)

    def test_wire_from_direct_run(self, campaign):
        assert campaign.hardware["wire"] == pytest.approx(274.81, rel=0.01)

    def test_switch_from_differencing(self, campaign):
        assert campaign.hardware["switch"] == pytest.approx(108.0, rel=0.05)

    def test_network_total(self, campaign):
        assert campaign.hardware["network"] == pytest.approx(382.81, rel=0.01)

    def test_rc_to_mem_8b_backout(self, campaign):
        # The §4.3 back-out carries the spin-poll residual (~5-10%),
        # like any subtraction-based methodology.
        assert campaign.hardware["rc_to_mem_8b"] == pytest.approx(240.96, rel=0.12)


class TestSendProgress:
    def test_post_prog_near_paper(self, campaign):
        assert campaign.send_progress["post_prog"] == pytest.approx(59.82, rel=0.10)

    def test_llp_tx_prog_sub_nanosecond(self, campaign):
        # §6: "Less than a nanosecond of Post_prog occurs in the LLP".
        assert campaign.send_progress["llp_tx_prog"] < 1.0

    def test_misc_injection_small_but_positive(self, campaign):
        assert 0.0 < campaign.send_progress["misc_injection"] < 10.0


class TestInjectionDistribution:
    def test_figure7_shape(self, campaign):
        dist = campaign.injection_distribution
        assert dist is not None
        # Mean near the Eq. 1 model, right-skewed (median < mean), with
        # a hard-ish floor like the paper's 201.3 ns minimum.
        assert dist.mean == pytest.approx(295.73, rel=0.05)
        assert dist.median < dist.mean
        assert dist.minimum > 150.0


class TestModelValidation:
    """The paper's four accuracy claims, end to end on measured data."""

    def test_eq1_within_5pct(self, times, campaign):
        model = InjectionModelLlp(times).predicted_ns
        observed = campaign.observed["llp_injection_overhead"]
        assert abs(model - observed) / observed < 0.05

    def test_llp_latency_within_5pct(self, times, campaign):
        model = LatencyModelLlp(times).predicted_ns
        observed = campaign.observed["llp_latency"]
        assert abs(model - observed) / observed < 0.05

    def test_eq2_within_5pct(self, times, campaign):
        model = OverallInjectionModel(times).predicted_ns
        observed = campaign.observed["overall_injection_overhead"]
        assert abs(model - observed) / observed < 0.05

    def test_e2e_latency_within_5pct(self, times, campaign):
        model = EndToEndLatencyModel(times).predicted_ns
        observed = campaign.observed["end_to_end_latency"]
        assert abs(model - observed) / observed < 0.05
