"""Latency tolerance: slack properties and brute-force validation."""

import math

import pytest

from repro.analysis.latency_tolerance import (
    COMPONENT_OVERRIDES,
    build_dependency_graph,
    latency_tolerance,
    perturbed_config,
    tolerance_report_text,
    validate_tolerance,
)
from repro.collectives.workloads import barrier_workload
from repro.node.config import SystemConfig
from repro.trace import trace_session
from repro.trace.tracer import Tracer

DET = SystemConfig.paper_testbed(deterministic=True)


def _traced_barrier(config=DET, **kw):
    kw.setdefault("n_nodes", 4)
    kw.setdefault("iterations", 1)
    with trace_session() as session:
        result = barrier_workload(config, **kw)
    return result, session.spans()


class TestReportProperties:
    def test_all_slacks_are_non_negative(self):
        _, spans = _traced_barrier()
        report = latency_tolerance(spans)
        for tolerance in report.components.values():
            assert tolerance.slack_ns >= 0.0
            assert tolerance.sensitivity >= 0.0
            assert tolerance.span_count > 0

    def test_critical_component_has_zero_slack_and_positive_sensitivity(self):
        _, spans = _traced_barrier()
        report = latency_tolerance(spans)
        host = report.components["host"]
        assert host.slack_ns == pytest.approx(0.0, abs=0.01)
        assert host.sensitivity > 0

    def test_coverage_explains_the_makespan(self):
        # Deterministic lockstep barrier: the dependency DAG should
        # explain essentially the whole traced interval.
        _, spans = _traced_barrier()
        report = latency_tolerance(spans)
        assert report.coverage > 0.9
        assert report.critical_path_ns <= report.makespan_ns * 1.001

    def test_accepts_tracer_and_msg_filter(self):
        tracer = Tracer()
        span = tracer.begin("llp", "llp_post", track="n.cpu0", msg=1)
        tracer.end(span)
        report = latency_tolerance(tracer, msg_id=999)
        assert report.components == {}

    def test_report_text_and_dict(self):
        _, spans = _traced_barrier()
        report = latency_tolerance(spans)
        text = tolerance_report_text(report)
        assert "critical path" in text and "slack" in text
        document = report.to_dict()
        assert set(document["components"]) == set(report.components)
        for row in document["components"].values():
            assert row["slack_ns"] is None or row["slack_ns"] >= 0.0


class TestSyntheticGraphs:
    def _span(self, layer, name, track, t0, t1, **attrs):
        span = Tracer().begin(layer, name, track=track, **attrs)
        span.t0, span.t1 = t0, t1
        return span

    def test_off_critical_component_gets_its_overlap_as_slack(self):
        # wire A (0-100, msg 1) feeds a sink at 100; wire B (0-40,
        # msg 2) feeds the same sink epoch but ends 60 earlier: B can
        # absorb 60 ns before the end-to-end time moves.
        spans = [
            self._span("network", "wire", "w1", 0.0, 100.0, msg=1, kind="data"),
            self._span("network", "switch", "s1", 0.0, 40.0, msg=2, kind="data"),
        ]
        report = latency_tolerance(spans)
        assert report.critical_path_ns == pytest.approx(100.0)
        assert report.components["wire"].slack_ns == pytest.approx(0.0, abs=0.01)
        assert report.components["switch"].slack_ns == pytest.approx(60.0, abs=0.01)
        assert math.isinf(report.components["switch"].slack_ns) is False

    def test_message_chain_orders_dependencies(self):
        spans = [
            self._span("network", "wire", "w", 0.0, 50.0, msg=7, kind="data"),
            self._span("pcie", "tlp", "l.down", 50.0, 80.0, msg=7, purpose="x"),
        ]
        graph = build_dependency_graph(spans)
        assert graph.longest_path_ns() == pytest.approx(80.0)
        # Serial chain: inflating either component moves the total.
        assert graph.longest_path_ns("wire", 10.0) == pytest.approx(90.0)
        assert graph.longest_path_ns("pcie", 10.0) == pytest.approx(90.0)

    def test_ack_spans_are_excluded(self):
        spans = [
            self._span("network", "wire", "w", 0.0, 50.0, msg=1, kind="data"),
            self._span("network", "wire", "w", 50.0, 500.0, msg=1, kind="ack"),
        ]
        graph = build_dependency_graph(spans)
        assert graph.longest_path_ns() == pytest.approx(50.0)


class TestBruteForceValidation:
    """Analytic slack vs re-simulation at perturbed latencies (<5%)."""

    @pytest.mark.parametrize("component", sorted(COMPONENT_OVERRIDES))
    def test_prediction_matches_resimulation(self, component):
        _, spans = _traced_barrier()
        report = latency_tolerance(spans)

        def simulate(config):
            return barrier_workload(config, n_nodes=4, iterations=1)["total_ns"]

        rows = validate_tolerance(
            report, simulate, DET, component, deltas_ns=(50.0, 200.0, 1000.0)
        )
        assert len(rows) == 3
        for row in rows:
            assert row["error"] < 0.05, (component, row)

    def test_perturbed_config_unknown_component(self):
        with pytest.raises(ValueError, match="registered"):
            perturbed_config(DET, "warp_drive", 10.0)

    def test_perturbed_config_shifts_the_knob(self):
        perturbed = perturbed_config(DET, "wire", 25.0)
        assert perturbed.network.wire_latency_ns == pytest.approx(
            DET.network.wire_latency_ns + 25.0
        )
        # Original untouched (configs are value objects).
        assert DET.network.wire_latency_ns == pytest.approx(274.81)
