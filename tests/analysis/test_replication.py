"""Unit tests for the replication study (repro.analysis.replication)."""

import pytest

from repro.analysis.replication import ReplicationStudy, run_replication_study


class TestReplicationStudy:
    @pytest.fixture(scope="class")
    def study(self):
        return run_replication_study(n_replications=2, quick=True)

    def test_all_models_covered(self, study):
        assert set(study.errors) == {
            "llp_injection_overhead",
            "llp_latency",
            "overall_injection_overhead",
            "end_to_end_latency",
        }

    def test_one_error_per_seed(self, study):
        for errors in study.errors.values():
            assert len(errors) == 2

    def test_errors_within_margin(self, study):
        assert study.all_within(margin=0.05)

    def test_statistics_consistent(self, study):
        name = "end_to_end_latency"
        assert study.worst_error(name) >= study.mean_error(name)
        assert 0.0 <= study.fraction_within(name) <= 1.0

    def test_render_contains_all_models(self, study):
        text = study.render()
        for name in study.errors:
            assert name in text

    def test_invalid_replication_count(self):
        with pytest.raises(ValueError):
            run_replication_study(n_replications=0)

    def test_distinct_seeds(self, study):
        assert len(set(study.seeds)) == len(study.seeds)


class TestFractionWithin:
    def test_counts_threshold_correctly(self):
        study = ReplicationStudy(seeds=[1, 2, 3])
        study.errors = {"m": [0.01, 0.04, 0.10]}
        assert study.fraction_within("m", margin=0.05) == pytest.approx(2 / 3)
        assert not study.all_within(margin=0.05)
        assert study.all_within(margin=0.2)
