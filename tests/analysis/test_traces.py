"""Unit tests for trace post-processing (repro.analysis.traces).

Uses hand-built trace records, so each extractor's pairing logic is
exercised in isolation from the simulator.
"""

import pytest

from repro.analysis.traces import (
    arrival_deltas,
    mwr_ack_round_trips,
    ping_completion_deltas,
    pong_ping_deltas,
)
from repro.pcie.analyzer import TraceRecord
from repro.pcie.link import Direction
from repro.pcie.packets import Dllp, DllpType, Tlp, TlpType


def record(ts, direction, packet):
    return TraceRecord(timestamp_ns=ts, direction=direction, packet=packet)


def mwr(purpose, seq=None, payload=64):
    return Tlp(kind=TlpType.MWR, payload_bytes=payload, purpose=purpose, seq=seq)


class TestArrivalDeltas:
    def test_deltas_of_matching_tlps(self):
        records = [
            record(100.0, Direction.DOWNSTREAM, mwr("pio_post")),
            record(350.0, Direction.DOWNSTREAM, mwr("pio_post")),
            record(640.0, Direction.DOWNSTREAM, mwr("pio_post")),
        ]
        assert arrival_deltas(records).tolist() == [250.0, 290.0]

    def test_other_purposes_and_directions_ignored(self):
        records = [
            record(100.0, Direction.DOWNSTREAM, mwr("pio_post")),
            record(150.0, Direction.UPSTREAM, mwr("pio_post")),
            record(200.0, Direction.DOWNSTREAM, mwr("doorbell")),
            record(400.0, Direction.DOWNSTREAM, mwr("pio_post")),
        ]
        assert arrival_deltas(records).tolist() == [300.0]

    def test_fewer_than_two_gives_empty(self):
        assert arrival_deltas([]).size == 0
        one = [record(1.0, Direction.DOWNSTREAM, mwr("pio_post"))]
        assert arrival_deltas(one).size == 0


class TestMwrAckRoundTrips:
    def test_pairs_by_sequence_number(self):
        records = [
            record(100.0, Direction.UPSTREAM, mwr("cqe_write", seq=7)),
            record(375.0, Direction.DOWNSTREAM, Dllp(kind=DllpType.ACK, acked_seq=7)),
        ]
        assert mwr_ack_round_trips(records).tolist() == [275.0]

    def test_interleaved_pairs(self):
        records = [
            record(0.0, Direction.UPSTREAM, mwr("cqe_write", seq=1)),
            record(50.0, Direction.UPSTREAM, mwr("cqe_write", seq=2)),
            record(275.0, Direction.DOWNSTREAM, Dllp(kind=DllpType.ACK, acked_seq=1)),
            record(330.0, Direction.DOWNSTREAM, Dllp(kind=DllpType.ACK, acked_seq=2)),
        ]
        assert mwr_ack_round_trips(records).tolist() == [275.0, 280.0]

    def test_unmatched_ack_ignored(self):
        records = [
            record(10.0, Direction.DOWNSTREAM, Dllp(kind=DllpType.ACK, acked_seq=99)),
        ]
        assert mwr_ack_round_trips(records).size == 0

    def test_wrong_purpose_ignored(self):
        records = [
            record(0.0, Direction.UPSTREAM, mwr("payload_write", seq=1)),
            record(275.0, Direction.DOWNSTREAM, Dllp(kind=DllpType.ACK, acked_seq=1)),
        ]
        assert mwr_ack_round_trips(records).size == 0


class TestPingCompletionDeltas:
    def test_ping_paired_with_next_completion(self):
        records = [
            record(0.0, Direction.DOWNSTREAM, mwr("pio_post")),
            record(765.62, Direction.UPSTREAM, mwr("cqe_write")),
            record(2000.0, Direction.DOWNSTREAM, mwr("pio_post")),
            record(2765.62, Direction.UPSTREAM, mwr("cqe_write")),
        ]
        deltas = ping_completion_deltas(records)
        assert deltas.tolist() == [pytest.approx(765.62)] * 2

    def test_completion_without_ping_ignored(self):
        records = [record(5.0, Direction.UPSTREAM, mwr("cqe_write"))]
        assert ping_completion_deltas(records).size == 0


class TestPongPingDeltas:
    def test_pong_paired_with_next_ping(self):
        records = [
            record(0.0, Direction.UPSTREAM, mwr("payload_write", payload=8)),
            record(753.0, Direction.DOWNSTREAM, mwr("pio_post")),
        ]
        assert pong_ping_deltas(records).tolist() == [753.0]

    def test_ping_before_pong_ignored(self):
        records = [
            record(0.0, Direction.DOWNSTREAM, mwr("pio_post")),
            record(10.0, Direction.UPSTREAM, mwr("payload_write", payload=8)),
        ]
        assert pong_ping_deltas(records).size == 0

    def test_dllps_never_interfere(self):
        records = [
            record(0.0, Direction.UPSTREAM, mwr("payload_write", payload=8)),
            record(5.0, Direction.UPSTREAM, Dllp(kind=DllpType.ACK, acked_seq=0)),
            record(700.0, Direction.DOWNSTREAM, mwr("pio_post")),
        ]
        assert pong_ping_deltas(records).tolist() == [700.0]
