"""Unit tests for PCIe configuration (repro.pcie.config)."""

import math

import pytest

from repro.pcie.config import PcieConfig


class TestDefaults:
    def test_base_latency_matches_paper(self):
        assert PcieConfig().base_latency_ns == pytest.approx(137.49)

    def test_rc_to_mem_8b_matches_paper(self):
        # Table 1: RC-to-MEM(8B) = 240.96 ns.
        assert PcieConfig().rc_to_mem(8) == pytest.approx(240.96)

    def test_rc_to_mem_monotone_in_size(self):
        config = PcieConfig()
        assert config.rc_to_mem(64) > config.rc_to_mem(8)


class TestTlpLatency:
    def test_infinite_bandwidth_means_constant_latency(self):
        config = PcieConfig()
        assert config.tlp_latency(0) == config.tlp_latency(4096) == 137.49

    def test_finite_bandwidth_adds_serialization(self):
        config = PcieConfig(bandwidth_bytes_per_ns=16.0)
        assert config.tlp_latency(64) == pytest.approx(137.49 + 4.0)
        assert config.tlp_latency(0) == pytest.approx(137.49)

    def test_negative_payload_rejected(self):
        with pytest.raises(ValueError):
            PcieConfig().tlp_latency(-1)

    def test_negative_rc_to_mem_size_rejected(self):
        with pytest.raises(ValueError):
            PcieConfig().rc_to_mem(-1)


class TestValidation:
    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            PcieConfig(base_latency_ns=-1.0)

    def test_zero_bandwidth_rejected(self):
        with pytest.raises(ValueError):
            PcieConfig(bandwidth_bytes_per_ns=0.0)

    def test_nonpositive_credits_rejected(self):
        with pytest.raises(ValueError, match="posted_header_credits"):
            PcieConfig(posted_header_credits=0)
        with pytest.raises(ValueError, match="completion_data_credits"):
            PcieConfig(completion_data_credits=-1)

    def test_defaults_are_valid(self):
        config = PcieConfig()
        assert math.isinf(config.bandwidth_bytes_per_ns)
