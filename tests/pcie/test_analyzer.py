"""Unit tests for the passive PCIe analyzer (repro.pcie.analyzer)."""

import pytest

from repro.pcie.analyzer import PcieAnalyzer
from repro.pcie.config import PcieConfig
from repro.pcie.link import Direction, PcieLink
from repro.pcie.packets import Tlp, TlpType
from repro.sim import Environment


def make_tapped_link():
    env = Environment()
    link = PcieLink(env, PcieConfig())
    analyzer = PcieAnalyzer(link)
    return env, link, analyzer


class TestCapture:
    def test_records_tlps_and_dllps(self):
        env, link, analyzer = make_tapped_link()
        link.send(Direction.DOWNSTREAM, Tlp(kind=TlpType.MWR, payload_bytes=64))
        env.run()
        assert len(analyzer.tlps()) == 1
        assert len(analyzer.dllps()) == 2  # the ACK and the UpdateFC

    def test_direction_filters(self):
        env, link, analyzer = make_tapped_link()
        link.send(Direction.DOWNSTREAM, Tlp(kind=TlpType.MWR, purpose="down"))
        link.send(Direction.UPSTREAM, Tlp(kind=TlpType.MWR, purpose="up"))
        env.run()
        down = analyzer.tlps(Direction.DOWNSTREAM)
        up = analyzer.tlps(Direction.UPSTREAM)
        assert [r.purpose for r in down] == ["down"]
        assert [r.purpose for r in up] == ["up"]

    def test_records_are_time_ordered(self):
        env, link, analyzer = make_tapped_link()
        for _ in range(5):
            link.send(Direction.DOWNSTREAM, Tlp(kind=TlpType.MWR))
        env.run()
        times = [r.timestamp_ns for r in analyzer.records]
        assert times == sorted(times)

    def test_clear(self):
        env, link, analyzer = make_tapped_link()
        link.send(Direction.DOWNSTREAM, Tlp(kind=TlpType.MWR))
        env.run()
        analyzer.clear()
        assert len(analyzer) == 0

    def test_payload_and_purpose_accessors(self):
        env, link, analyzer = make_tapped_link()
        link.send(
            Direction.DOWNSTREAM,
            Tlp(kind=TlpType.MWR, payload_bytes=64, purpose="pio_post"),
        )
        env.run()
        record = analyzer.tlps()[0]
        assert record.payload_bytes == 64
        assert record.purpose == "pio_post"
        dllp_record = analyzer.dllps()[0]
        assert dllp_record.payload_bytes == 0
        assert dllp_record.purpose == ""


class TestPassivity:
    def test_analyzer_does_not_perturb_timing(self):
        """The paper verified the analyzer is overhead-free; the
        simulated one must deliver identical timing with and without."""

        def run(with_analyzer: bool) -> float:
            env = Environment()
            link = PcieLink(env, PcieConfig())
            if with_analyzer:
                PcieAnalyzer(link)
            arrivals = []
            link.set_receiver(Direction.DOWNSTREAM, lambda t: arrivals.append(env.now))
            link.send(Direction.DOWNSTREAM, Tlp(kind=TlpType.MWR, payload_bytes=64))
            env.run()
            return arrivals[0]

        assert run(True) == run(False)

    def test_placebo_mode_captures_nothing(self):
        env = Environment()
        link = PcieLink(env, PcieConfig())
        analyzer = PcieAnalyzer(link, capture=False)
        link.send(Direction.DOWNSTREAM, Tlp(kind=TlpType.MWR))
        env.run()
        assert len(analyzer) == 0
