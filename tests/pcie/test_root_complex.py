"""Unit tests for the Root Complex and host memory (repro.pcie.root_complex)."""

import pytest

from repro.pcie.config import PcieConfig
from repro.pcie.link import Direction, PcieLink
from repro.pcie.packets import Tlp, TlpType
from repro.pcie.root_complex import HostMemory, RootComplex
from repro.sim import Environment


def make_rc(**config_overrides):
    env = Environment()
    config = PcieConfig(**config_overrides)
    link = PcieLink(env, config)
    memory = HostMemory(env)
    rc = RootComplex(env, link, config, memory)
    return env, link, memory, rc


class TestHostMemory:
    def test_mailbox_created_on_demand_and_cached(self):
        env = Environment()
        memory = HostMemory(env)
        box = memory.mailbox("cq0")
        assert memory.mailbox("cq0") is box

    def test_distinct_names_distinct_mailboxes(self):
        env = Environment()
        memory = HostMemory(env)
        assert memory.mailbox("a") is not memory.mailbox("b")


class TestMmioWrite:
    def test_mmio_becomes_downstream_mwr(self):
        env, link, _memory, rc = make_rc()
        received = []
        link.set_receiver(Direction.DOWNSTREAM, lambda t: received.append((env.now, t)))
        tlp = Tlp(kind=TlpType.MWR, payload_bytes=64, purpose="pio_post")
        rc.mmio_write(tlp)
        env.run()
        assert received[0][0] == pytest.approx(137.49)
        assert received[0][1] is tlp
        assert rc.mmio_writes == 1

    def test_mmio_processing_delay(self):
        env, link, _memory, rc = make_rc(rc_mmio_processing_ns=5.0)
        received = []
        link.set_receiver(Direction.DOWNSTREAM, lambda t: received.append(env.now))
        rc.mmio_write(Tlp(kind=TlpType.MWR, payload_bytes=64))
        env.run()
        assert received == [pytest.approx(137.49 + 5.0)]

    def test_non_mwr_mmio_rejected(self):
        _env, _link, _memory, rc = make_rc()
        with pytest.raises(ValueError):
            rc.mmio_write(Tlp(kind=TlpType.MRD, read_bytes=8))


class TestDmaWrite:
    def test_upstream_mwr_lands_in_mailbox_after_rc_to_mem(self):
        env, link, memory, rc = make_rc()
        mailbox = memory.mailbox("recv")
        tlp = Tlp(
            kind=TlpType.MWR,
            payload_bytes=8,
            purpose="payload_write",
            message="payload",
            deliver_to=mailbox,
        )
        link.send(Direction.UPSTREAM, tlp)
        env.run()
        # Arrival at RC after 137.49, visible after RC-to-MEM(8B)=240.96.
        assert len(mailbox) == 1
        assert rc.dma_writes == 1

    def test_delivery_timing_includes_rc_to_mem(self):
        env, link, _memory, rc = make_rc()
        seen = []
        tlp = Tlp(
            kind=TlpType.MWR,
            payload_bytes=8,
            message="m",
            deliver_to=lambda msg, when: seen.append((msg, when)),
        )
        link.send(Direction.UPSTREAM, tlp)
        env.run()
        assert seen == [("m", pytest.approx(137.49 + 240.96))]

    def test_larger_payload_takes_longer(self):
        env, link, _memory, _rc = make_rc()
        seen = []
        link.send(
            Direction.UPSTREAM,
            Tlp(
                kind=TlpType.MWR,
                payload_bytes=64,
                message="big",
                deliver_to=lambda m, when: seen.append(when),
            ),
        )
        env.run()
        assert seen[0] > 137.49 + 240.96

    def test_delivery_without_target_is_noop(self):
        env, link, _memory, rc = make_rc()
        link.send(Direction.UPSTREAM, Tlp(kind=TlpType.MWR, payload_bytes=8))
        env.run()
        assert rc.dma_writes == 1

    def test_bad_deliver_target_raises(self):
        env, link, _memory, _rc = make_rc()
        link.send(
            Direction.UPSTREAM,
            Tlp(kind=TlpType.MWR, payload_bytes=8, deliver_to="not-a-target"),
        )
        with pytest.raises(TypeError):
            env.run()


class TestDmaRead:
    def test_mrd_answered_with_cpld(self):
        env, link, _memory, rc = make_rc()
        completions = []
        link.set_receiver(
            Direction.DOWNSTREAM, lambda t: completions.append((env.now, t))
        )
        link.send(
            Direction.UPSTREAM,
            Tlp(kind=TlpType.MRD, read_bytes=64, purpose="md_fetch", tag=5),
        )
        env.run()
        assert len(completions) == 1
        when, cpld = completions[0]
        assert cpld.kind is TlpType.CPLD
        assert cpld.payload_bytes == 64
        assert cpld.tag == 5
        assert cpld.purpose == "cpld:md_fetch"
        # Up 137.49 + mem read 90 + down 137.49.
        assert when == pytest.approx(2 * 137.49 + 90.0)
        assert rc.dma_reads == 1
