"""Fault-injection tests: Data Link layer NACK / go-back-N replay.

§2: "The Data Link layer ensures the successful execution of all
transactions using Data Link Layer Packet (DLLP) acknowledgements
(ACK/NACK)".  These tests corrupt TLPs and verify delivery remains
exactly-once and in-order, at the cost of replay latency.
"""

import numpy as np
import pytest

from repro.pcie.config import PcieConfig
from repro.pcie.link import Direction, PcieLink
from repro.pcie.packets import Dllp, DllpType, Tlp, TlpType
from repro.sim import Environment


def make_link(corruption=0.0, seed=0, **overrides):
    env = Environment()
    link = PcieLink(
        env,
        PcieConfig(tlp_corruption_prob=corruption, **overrides),
        rng=np.random.default_rng(seed),
    )
    return env, link


class ForcedErrorRng:
    """Deterministic 'rng': corrupt exactly the chosen attempt numbers."""

    def __init__(self, corrupt_attempts):
        self.corrupt_attempts = set(corrupt_attempts)
        self.calls = 0

    def random(self):
        self.calls += 1
        return 0.0 if self.calls in self.corrupt_attempts else 1.0


class TestHealthyLink:
    def test_zero_probability_never_consults_rng(self):
        env = Environment()

        class Exploding:
            def random(self):  # pragma: no cover - must not run
                raise AssertionError("rng consulted on a healthy link")

        link = PcieLink(env, PcieConfig(), rng=Exploding())
        link.set_receiver(Direction.DOWNSTREAM, lambda t: None)
        link.send(Direction.DOWNSTREAM, Tlp(kind=TlpType.MWR, payload_bytes=64))
        env.run()
        assert link.tlps_delivered[Direction.DOWNSTREAM] == 1

    def test_replay_buffer_drains_after_acks(self):
        env, link = make_link()
        link.set_receiver(Direction.DOWNSTREAM, lambda t: None)
        for _ in range(5):
            link.send(Direction.DOWNSTREAM, Tlp(kind=TlpType.MWR, payload_bytes=64))
        env.run()
        assert link._ports[Direction.DOWNSTREAM].replay == {}


class TestSingleCorruption:
    def test_corrupted_tlp_retransmitted_and_delivered(self):
        env = Environment()
        link = PcieLink(
            env, PcieConfig(tlp_corruption_prob=0.5), rng=ForcedErrorRng({1})
        )
        delivered = []
        link.set_receiver(Direction.DOWNSTREAM, lambda t: delivered.append(env.now))
        link.send(Direction.DOWNSTREAM, Tlp(kind=TlpType.MWR, payload_bytes=64))
        env.run()
        assert len(delivered) == 1
        # Original traversal + NACK return + replay delay + retransmit.
        expected = 137.49 + 137.49 + 50.0 + 137.49
        assert delivered[0] == pytest.approx(expected)
        corrupted, retransmissions = link.corruption_stats(Direction.DOWNSTREAM)
        assert (corrupted, retransmissions) == (1, 1)

    def test_nack_dllp_visible_on_tap(self):
        env = Environment()
        link = PcieLink(
            env, PcieConfig(tlp_corruption_prob=0.5), rng=ForcedErrorRng({1})
        )
        nacks = []
        link.set_receiver(Direction.DOWNSTREAM, lambda t: None)
        link.add_tap(
            lambda ts, d, p: nacks.append(p)
            if isinstance(p, Dllp) and p.kind is DllpType.NACK
            else None
        )
        link.send(Direction.DOWNSTREAM, Tlp(kind=TlpType.MWR, payload_bytes=64))
        env.run()
        assert len(nacks) == 1
        assert nacks[0].acked_seq == -1  # nothing received yet

    def test_go_back_n_preserves_order(self):
        """Corrupt the first of three TLPs: the trailing two must be
        dropped by the receiver and replayed in order."""
        env = Environment()
        link = PcieLink(
            env, PcieConfig(tlp_corruption_prob=0.5), rng=ForcedErrorRng({1})
        )
        order = []
        link.set_receiver(Direction.DOWNSTREAM, lambda t: order.append(t.purpose))
        for purpose in ("a", "b", "c"):
            link.send(Direction.DOWNSTREAM, Tlp(kind=TlpType.MWR, purpose=purpose))
        env.run()
        assert order == ["a", "b", "c"]
        _corrupted, retransmissions = link.corruption_stats(Direction.DOWNSTREAM)
        assert retransmissions == 3  # whole window replayed

    def test_corruption_of_middle_tlp(self):
        env = Environment()
        link = PcieLink(
            env, PcieConfig(tlp_corruption_prob=0.5), rng=ForcedErrorRng({2})
        )
        order = []
        link.set_receiver(Direction.DOWNSTREAM, lambda t: order.append(t.purpose))
        for purpose in ("a", "b", "c"):
            link.send(Direction.DOWNSTREAM, Tlp(kind=TlpType.MWR, purpose=purpose))
        env.run()
        assert order == ["a", "b", "c"]


class TestStochasticErrors:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_lossy_link_delivers_everything_in_order(self, seed):
        env, link = make_link(corruption=0.2, seed=seed)
        received = []
        link.set_receiver(Direction.DOWNSTREAM, lambda t: received.append(t.tag))
        for index in range(40):
            link.send(
                Direction.DOWNSTREAM, Tlp(kind=TlpType.MWR, payload_bytes=64, tag=index)
            )
        env.run()
        assert received == list(range(40))
        corrupted, retransmissions = link.corruption_stats(Direction.DOWNSTREAM)
        assert corrupted > 0
        assert retransmissions >= corrupted

    def test_lossy_link_slower_than_clean(self):
        def final_delivery(corruption, seed=5):
            env, link = make_link(corruption=corruption, seed=seed)
            times = []
            link.set_receiver(Direction.DOWNSTREAM, lambda t: times.append(env.now))
            for _ in range(30):
                link.send(Direction.DOWNSTREAM, Tlp(kind=TlpType.MWR, payload_bytes=64))
            env.run()
            return times[-1]

        assert final_delivery(0.3) > final_delivery(0.0)


class TestEndToEndWithErrors:
    def test_message_survives_lossy_pcie(self):
        """A whole message crosses a lossy initiator link correctly."""
        from repro.nic.descriptor import Message, MessageOp
        from repro.node import SystemConfig, Testbed

        config = SystemConfig.paper_testbed(deterministic=True).evolve(
            pcie=PcieConfig(tlp_corruption_prob=0.3)
        )
        tb = Testbed(config)
        qp = tb.node1.nic.create_qp()
        message = Message(op=MessageOp.AM, payload_bytes=8, recv_target="rx", qp=qp)
        qp.register_post(message)
        tb.node1.rc.mmio_write(
            Tlp(kind=TlpType.MWR, payload_bytes=64, purpose="pio_post", message=message)
        )
        tb.run()
        assert len(tb.node2.memory.mailbox("rx")) == 1
        assert "cqe_visible" in message.timestamps
