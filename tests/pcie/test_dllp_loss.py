"""DLLP loss and the ACKNAK latency timer (the §2 simplification fix).

The Data Link layer's ACK/NACK DLLPs can now themselves be lost (the
``pcie.dllp`` fault site).  A transmitter whose oldest unacknowledged
sequence number makes no progress across a full ACKNAK latency window
replays its buffer unprompted — so delivery stays exactly-once and
in-order even when the acknowledgement path is lossy.  Healthy links
never arm the timer.
"""

import pytest

from repro.faults import FaultInjector, FaultPlan, FaultRule
from repro.pcie.config import PcieConfig
from repro.pcie.link import Direction, PcieLink
from repro.pcie.packets import Tlp, TlpType
from repro.sim import Environment
from repro.sim.rng import RandomStreams


def make_faulty_link(*rules, **config_overrides):
    env = Environment()
    injector = FaultInjector(
        FaultPlan(rules=tuple(rules)), RandomStreams(3), env
    )
    link = PcieLink(env, PcieConfig(**config_overrides), faults=injector)
    return env, link


def send_and_collect(env, link, n, direction=Direction.DOWNSTREAM):
    received = []
    link.set_receiver(direction, lambda t: received.append(t.tag))
    for index in range(n):
        link.send(direction, Tlp(kind=TlpType.MWR, payload_bytes=64, tag=index))
    env.run()
    return received


class TestAckLoss:
    def test_lost_ack_recovered_by_acknak_timer(self):
        env, link = make_faulty_link(
            FaultRule(site="pcie.dllp", kind="nth", occurrences=(1,)),
            acknak_latency_ns=900.0,
        )
        received = send_and_collect(env, link, 1)
        # Delivered exactly once despite the lost ACK...
        assert received == [0]
        port = link._ports[Direction.DOWNSTREAM]
        assert port.dllps_dropped == 1
        # ...the ACKNAK timer replayed, the duplicate was discarded by
        # the receiver's sequence check, and the replay buffer drained
        # (the re-ACK for the duplicate cleared it).
        assert port.retransmissions >= 1
        assert not port.replay
        assert not port.acknak_running

    def test_lost_ack_in_burst_keeps_order_and_exactness(self):
        env, link = make_faulty_link(
            FaultRule(site="pcie.dllp", kind="nth", occurrences=(2, 3)),
            acknak_latency_ns=900.0,
        )
        received = send_and_collect(env, link, 6)
        assert received == list(range(6))
        assert not link._ports[Direction.DOWNSTREAM].replay

    def test_cumulative_ack_absorbs_single_dllp_loss_without_replay(self):
        # When a later ACK lands inside the same ACKNAK window, its
        # cumulative semantics clear the buffer: floor progress is
        # observed and no replay fires.
        env, link = make_faulty_link(
            FaultRule(site="pcie.dllp", kind="nth", occurrences=(1,)),
            acknak_latency_ns=50_000.0,
        )
        received = send_and_collect(env, link, 4)
        assert received == list(range(4))
        port = link._ports[Direction.DOWNSTREAM]
        assert port.retransmissions == 0
        assert not port.replay


class TestTlpFaultSites:
    def test_injected_drop_recovered(self):
        env, link = make_faulty_link(
            FaultRule(site="pcie.tlp", kind="nth", occurrences=(1,)),
            acknak_latency_ns=900.0,
        )
        received = send_and_collect(env, link, 3)
        assert received == list(range(3))
        port = link._ports[Direction.DOWNSTREAM]
        assert port.rx_dropped == 1
        assert not port.replay

    def test_injected_corruption_nacked_like_legacy_path(self):
        env, link = make_faulty_link(
            FaultRule(
                site="pcie.tlp", kind="nth", action="corrupt", occurrences=(1,)
            ),
        )
        received = send_and_collect(env, link, 2)
        assert received == [0, 1]
        port = link._ports[Direction.DOWNSTREAM]
        assert port.corrupted == 1
        assert port.retransmissions >= 1

    def test_combined_tlp_and_dllp_loss(self):
        env, link = make_faulty_link(
            FaultRule(site="pcie.tlp", kind="nth", occurrences=(2,)),
            FaultRule(site="pcie.dllp", kind="nth", occurrences=(1,)),
            acknak_latency_ns=900.0,
        )
        received = send_and_collect(env, link, 5)
        assert received == list(range(5))
        assert not link._ports[Direction.DOWNSTREAM].replay


class TestHealthyLinksStayTimerFree:
    def test_no_fault_plan_never_arms_acknak_timer(self):
        env = Environment()
        link = PcieLink(env, PcieConfig())
        received = send_and_collect(env, link, 3)
        assert received == [0, 1, 2]
        port = link._ports[Direction.DOWNSTREAM]
        assert not port.acknak_running
        assert not port.watchdog_running

    def test_plan_elsewhere_keeps_pcie_timer_free(self):
        env = Environment()
        injector = FaultInjector(
            FaultPlan(rules=(FaultRule(site="network.wire", probability=0.5),)),
            RandomStreams(3),
            env,
        )
        link = PcieLink(env, PcieConfig(), faults=injector)
        assert not link._fault_sites_active
        send_and_collect(env, link, 2)
        assert not link._ports[Direction.DOWNSTREAM].acknak_running

    def test_acknak_timer_stops_rearming_after_drain(self):
        env, link = make_faulty_link(
            FaultRule(site="pcie.dllp", kind="nth", occurrences=(1,)),
            acknak_latency_ns=900.0,
        )
        send_and_collect(env, link, 1)
        # env.run() returned: the calendar is empty, so the timer cannot
        # still be live (a re-arming timer would never let run() finish).
        assert not link._ports[Direction.DOWNSTREAM].acknak_running


class TestConfig:
    def test_acknak_latency_validated(self):
        with pytest.raises(ValueError):
            PcieConfig(acknak_latency_ns=0.0)
