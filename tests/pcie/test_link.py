"""Unit tests for the PCIe link (repro.pcie.link)."""

import pytest

from repro.pcie.config import PcieConfig
from repro.pcie.link import CreditPool, Direction, PcieLink, data_credits_for
from repro.pcie.packets import Dllp, DllpType, Tlp, TlpType
from repro.sim import Environment, SimulationError


def make_link(**config_overrides):
    env = Environment()
    link = PcieLink(env, PcieConfig(**config_overrides))
    return env, link


class TestDataCredits:
    def test_sixteen_byte_units(self):
        assert data_credits_for(0) == 0
        assert data_credits_for(1) == 1
        assert data_credits_for(16) == 1
        assert data_credits_for(17) == 2
        assert data_credits_for(64) == 4


class TestCreditPool:
    def test_consume_and_replenish(self):
        pool = CreditPool(headers=2, data=8)
        tlp = Tlp(kind=TlpType.MWR, payload_bytes=64)
        assert pool.can_consume(tlp)
        pool.consume(tlp)
        assert pool.headers == 1
        assert pool.data == 4
        pool.replenish(1, 4)
        assert pool.headers == 2
        assert pool.data == 8

    def test_replenish_caps_at_max(self):
        pool = CreditPool(headers=2, data=8)
        pool.replenish(100, 100)
        assert pool.headers == 2
        assert pool.data == 8

    def test_overconsume_rejected(self):
        pool = CreditPool(headers=1, data=1)
        tlp = Tlp(kind=TlpType.MWR, payload_bytes=64)
        assert not pool.can_consume(tlp)
        with pytest.raises(SimulationError):
            pool.consume(tlp)

    def test_nonpositive_pool_rejected(self):
        with pytest.raises(SimulationError):
            CreditPool(headers=0, data=1)


class TestDelivery:
    def test_downstream_delivery_after_latency(self):
        env, link = make_link()
        delivered = []
        link.set_receiver(Direction.DOWNSTREAM, lambda t: delivered.append((env.now, t)))
        tlp = Tlp(kind=TlpType.MWR, payload_bytes=64, purpose="pio_post")
        link.send(Direction.DOWNSTREAM, tlp)
        env.run()
        assert len(delivered) == 1
        when, received = delivered[0]
        assert when == pytest.approx(137.49)
        assert received is tlp

    def test_upstream_delivery(self):
        env, link = make_link()
        delivered = []
        link.set_receiver(Direction.UPSTREAM, lambda t: delivered.append(env.now))
        link.send(Direction.UPSTREAM, Tlp(kind=TlpType.MWR, payload_bytes=64))
        env.run()
        assert delivered == [pytest.approx(137.49)]

    def test_fifo_ordering_preserved(self):
        env, link = make_link()
        order = []
        link.set_receiver(Direction.DOWNSTREAM, lambda t: order.append(t.purpose))
        for purpose in ("a", "b", "c"):
            link.send(Direction.DOWNSTREAM, Tlp(kind=TlpType.MWR, purpose=purpose))
        env.run()
        assert order == ["a", "b", "c"]

    def test_sequence_numbers_assigned_per_direction(self):
        env, link = make_link()
        seqs = []
        link.set_receiver(Direction.DOWNSTREAM, lambda t: seqs.append(t.seq))
        for _ in range(3):
            link.send(Direction.DOWNSTREAM, Tlp(kind=TlpType.MWR))
        env.run()
        assert seqs == [0, 1, 2]

    def test_delivery_counters(self):
        env, link = make_link()
        link.send(Direction.DOWNSTREAM, Tlp(kind=TlpType.MWR))
        link.send(Direction.UPSTREAM, Tlp(kind=TlpType.MWR))
        env.run()
        assert link.tlps_delivered[Direction.DOWNSTREAM] == 1
        assert link.tlps_delivered[Direction.UPSTREAM] == 1


class TestAcks:
    def test_upstream_tlp_acked_with_round_trip(self):
        """The §4.3 PCIe measurement primitive: upstream MWr at t0, ACK
        DLLP back at the endpoint at t0 + 2×latency."""
        env, link = make_link()
        taps = []
        link.add_tap(lambda ts, d, p: taps.append((ts, d, p)))
        link.send(Direction.UPSTREAM, Tlp(kind=TlpType.MWR, payload_bytes=64))
        env.run()
        mwr = [t for t in taps if isinstance(t[2], Tlp)]
        acks = [
            t
            for t in taps
            if isinstance(t[2], Dllp) and t[2].kind is DllpType.ACK
        ]
        assert len(mwr) == 1 and len(acks) == 1
        # Upstream TLP observed at departure (t=0); its ACK arrives back
        # at the endpoint after a full round trip.
        assert mwr[0][0] == pytest.approx(0.0)
        assert acks[0][0] == pytest.approx(2 * 137.49)
        assert acks[0][2].acked_seq == mwr[0][2].seq

    def test_ack_processing_delay_added(self):
        env, link = make_link(ack_processing_ns=10.0)
        acks = []
        link.add_tap(
            lambda ts, d, p: acks.append(ts)
            if isinstance(p, Dllp) and p.kind is DllpType.ACK
            else None
        )
        link.send(Direction.UPSTREAM, Tlp(kind=TlpType.MWR, payload_bytes=64))
        env.run()
        assert acks == [pytest.approx(2 * 137.49 + 10.0)]


class TestTapPlacement:
    def test_downstream_observed_at_arrival(self):
        env, link = make_link()
        taps = []
        link.add_tap(
            lambda ts, d, p: taps.append((ts, d)) if isinstance(p, Tlp) else None
        )
        link.send(Direction.DOWNSTREAM, Tlp(kind=TlpType.MWR))
        env.run()
        assert taps[0] == (pytest.approx(137.49), Direction.DOWNSTREAM)

    def test_upstream_observed_at_departure(self):
        env, link = make_link()
        taps = []
        link.add_tap(
            lambda ts, d, p: taps.append((ts, d)) if isinstance(p, Tlp) else None
        )

        def sender():
            yield env.timeout(50.0)
            link.send(Direction.UPSTREAM, Tlp(kind=TlpType.MWR))

        env.process(sender())
        env.run()
        assert taps[0] == (pytest.approx(50.0), Direction.UPSTREAM)


class TestFlowControl:
    def test_credit_exhaustion_stalls_then_resumes(self):
        env, link = make_link(posted_header_credits=2, update_fc_interval_ns=50.0)
        delivered = []
        link.set_receiver(Direction.DOWNSTREAM, lambda t: delivered.append(env.now))
        for _ in range(4):
            link.send(Direction.DOWNSTREAM, Tlp(kind=TlpType.MWR, payload_bytes=64))
        env.run()
        assert len(delivered) == 4
        assert link.credit_stalls(Direction.DOWNSTREAM) >= 2
        # The stalled TLPs arrive strictly later than the first two.
        assert delivered[2] > delivered[1]

    def test_no_stalls_with_ample_credits(self):
        env, link = make_link()
        link.set_receiver(Direction.DOWNSTREAM, lambda t: None)
        for _ in range(10):
            link.send(Direction.DOWNSTREAM, Tlp(kind=TlpType.MWR, payload_bytes=64))
        env.run()
        assert link.credit_stalls(Direction.DOWNSTREAM) == 0

    def test_credits_fully_returned_after_quiescence(self):
        env, link = make_link(posted_header_credits=4)
        link.set_receiver(Direction.DOWNSTREAM, lambda t: None)
        for _ in range(8):
            link.send(Direction.DOWNSTREAM, Tlp(kind=TlpType.MWR, payload_bytes=64))
        env.run()
        pool = link.pool(Direction.DOWNSTREAM, "posted")
        assert pool.headers == pool.max_headers
        assert pool.data == pool.max_data

    def test_credit_classes_independent(self):
        env, link = make_link(posted_header_credits=1)
        link.set_receiver(Direction.DOWNSTREAM, lambda t: None)
        link.send(Direction.DOWNSTREAM, Tlp(kind=TlpType.MWR, payload_bytes=64))
        # Non-posted send must not be blocked by the exhausted posted pool.
        accepted = link.send(Direction.UPSTREAM, Tlp(kind=TlpType.MRD, read_bytes=64))
        assert accepted.triggered
        env.run()

    def test_updatefc_dllps_visible_on_tap(self):
        env, link = make_link(posted_header_credits=2, update_fc_interval_ns=25.0)
        updates = []
        link.set_receiver(Direction.DOWNSTREAM, lambda t: None)
        link.add_tap(
            lambda ts, d, p: updates.append(p)
            if isinstance(p, Dllp) and p.kind is DllpType.UPDATE_FC
            else None
        )
        for _ in range(3):
            link.send(Direction.DOWNSTREAM, Tlp(kind=TlpType.MWR, payload_bytes=64))
        env.run()
        assert updates
        assert sum(u.header_credits for u in updates) == 3
