"""Unit tests for PCIe packet types (repro.pcie.packets)."""

import pytest

from repro.pcie.packets import Dllp, DllpType, Tlp, TlpType


class TestTlp:
    def test_mwr_is_posted(self):
        assert Tlp(kind=TlpType.MWR, payload_bytes=64).is_posted

    def test_mrd_and_cpld_not_posted(self):
        assert not Tlp(kind=TlpType.MRD, read_bytes=64).is_posted
        assert not Tlp(kind=TlpType.CPLD, payload_bytes=64).is_posted

    def test_mrd_with_payload_rejected(self):
        with pytest.raises(ValueError, match="MRd"):
            Tlp(kind=TlpType.MRD, payload_bytes=8)

    def test_negative_sizes_rejected(self):
        with pytest.raises(ValueError):
            Tlp(kind=TlpType.MWR, payload_bytes=-1)
        with pytest.raises(ValueError):
            Tlp(kind=TlpType.MRD, read_bytes=-1)

    def test_ids_unique_and_increasing(self):
        a = Tlp(kind=TlpType.MWR)
        b = Tlp(kind=TlpType.MWR)
        assert b.tlp_id > a.tlp_id

    def test_purpose_and_message_carried(self):
        payload = object()
        tlp = Tlp(kind=TlpType.MWR, payload_bytes=64, purpose="pio_post", message=payload)
        assert tlp.purpose == "pio_post"
        assert tlp.message is payload


class TestDllp:
    def test_ack_carries_sequence(self):
        ack = Dllp(kind=DllpType.ACK, acked_seq=7)
        assert ack.acked_seq == 7

    def test_updatefc_carries_credits(self):
        update = Dllp(kind=DllpType.UPDATE_FC, header_credits=4, data_credits=16)
        assert update.header_credits == 4
        assert update.data_credits == 16

    def test_ids_unique(self):
        a = Dllp(kind=DllpType.ACK)
        b = Dllp(kind=DllpType.ACK)
        assert a.dllp_id != b.dllp_id
